//! Property battery for the queue core (satellite of the serving PR).
//!
//! Drives seed-derived admit/pop/remove/shed schedules against
//! [`BoundedQueue`] while mirroring every operation into a flat reference
//! model, and checks after **every step**:
//!
//! * conservation — each admitted ticket is handed out exactly once (by
//!   `pop` or `remove`): nothing lost, nothing duplicated;
//! * order — `pop` returns exactly what the model's priority-then-FIFO
//!   rule predicts, ticket for ticket;
//! * bounds — occupancy never exceeds capacity, and admission at capacity
//!   always rejects (sheds);
//! * ledger — `submitted == completed + failed + shed + pending` after
//!   every transition, reducing at the drained end to the serving
//!   contract `shed + completed + failed == submitted`.

use std::collections::{HashSet, VecDeque};

use proptest::prelude::*;
use tg_serve::queue::{BoundedQueue, Ledger, Priority};

fn splitmix64(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Flat mirror of the queue: one FIFO per class, holding (ticket, job id).
#[derive(Default)]
struct Model {
    classes: [VecDeque<(u64, u64)>; 3],
}

impl Model {
    fn len(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }

    fn expected_pop(&mut self) -> Option<(u64, Priority, u64)> {
        for p in Priority::ALL {
            if let Some((ticket, id)) = self.classes[p as usize].pop_front() {
                return Some((ticket, p, id));
            }
        }
        None
    }

    /// Pick the `k`-th queued entry (scan order) and remove it.
    fn remove_kth(&mut self, k: usize) -> Option<(u64, u64)> {
        let mut seen = 0;
        for class in &mut self.classes {
            if k - seen < class.len() {
                return class.remove(k - seen);
            }
            seen += class.len();
        }
        None
    }
}

/// One full schedule: returns (submitted, completed, failed, shed) so the
/// caller can cross-check the ledger.
fn run_schedule(seed: u64, cap: usize, steps: usize) -> Ledger {
    let mut s = seed;
    let mut q: BoundedQueue<u64> = BoundedQueue::new(cap);
    let mut model = Model::default();
    let mut ledger = Ledger::default();

    // Conservation bookkeeping over the whole run.
    let mut next_id: u64 = 0;
    let mut admitted: HashSet<u64> = HashSet::new(); // tickets still queued
    let mut handed_out: HashSet<u64> = HashSet::new(); // popped or removed
    let mut ever_admitted: u64 = 0;

    let mut step = |q: &mut BoundedQueue<u64>, model: &mut Model, ledger: &mut Ledger, r: u64| {
        match r % 10 {
            // admit (weighted heaviest so the queue actually fills)
            0..=4 => {
                let p = Priority::ALL[(r / 16 % 3) as usize];
                let id = next_id;
                next_id += 1;
                match q.admit(p, id) {
                    Ok(ticket) => {
                        assert!(admitted.insert(ticket), "ticket {ticket} issued twice");
                        assert!(!handed_out.contains(&ticket));
                        model.classes[p as usize].push_back((ticket, id));
                        ever_admitted += 1;
                        ledger.submitted += 1;
                        ledger.pending += 1;
                    }
                    Err(full) => {
                        assert_eq!(full.cap, cap);
                        assert_eq!(q.len(), cap, "rejection below capacity");
                        ledger.submitted += 1;
                        ledger.shed += 1;
                    }
                }
            }
            // pop → "complete"
            5..=7 => {
                let got = q.pop();
                let want = model.expected_pop();
                assert_eq!(got, want, "pop order diverged from model");
                if let Some((ticket, _, _)) = got {
                    assert!(admitted.remove(&ticket), "popped unknown ticket");
                    assert!(handed_out.insert(ticket), "ticket handed out twice");
                    ledger.pending -= 1;
                    ledger.completed += 1;
                }
            }
            // remove (cancel) → "fail"; sometimes a dead ticket (no-op)
            _ => {
                if r % 10 == 8 && model.len() > 0 {
                    let k = (r >> 8) as usize % model.len();
                    let (ticket, id) = model.remove_kth(k).expect("k in range");
                    assert_eq!(q.remove(ticket), Some(id));
                    assert!(admitted.remove(&ticket));
                    assert!(handed_out.insert(ticket), "ticket handed out twice");
                    ledger.pending -= 1;
                    ledger.failed += 1;
                } else {
                    // a ticket that already left (or never entered) the queue
                    let dead = r >> 8;
                    if !admitted.contains(&dead) {
                        assert_eq!(q.remove(dead), None, "resurrected a dead ticket");
                    }
                }
            }
        }
        assert_eq!(q.len(), model.len(), "occupancy diverged from model");
        assert!(q.len() <= cap, "capacity exceeded");
        assert!(ledger.balanced(), "ledger conservation violated");
    };

    for _ in 0..steps {
        let r = splitmix64(&mut s);
        step(&mut q, &mut model, &mut ledger, r);
    }

    // Drain: every still-queued ticket must come out, in model order.
    while let Some(want) = model.expected_pop() {
        let got = q.pop().expect("queue drained before model");
        assert_eq!(got, want, "drain order diverged from model");
        assert!(admitted.remove(&got.0));
        assert!(handed_out.insert(got.0));
        ledger.pending -= 1;
        ledger.completed += 1;
    }
    assert_eq!(q.pop(), None, "queue held entries the model never saw");
    assert!(q.is_empty());

    // Whole-run conservation: every admitted ticket handed out exactly once.
    assert!(
        admitted.is_empty(),
        "tickets lost in the queue: {admitted:?}"
    );
    assert_eq!(handed_out.len() as u64, ever_admitted);

    // Quiescent serving contract.
    assert!(ledger.balanced());
    assert!(ledger.quiescent());
    assert_eq!(
        ledger.shed + ledger.completed + ledger.failed,
        ledger.submitted,
        "a job escaped the terminal buckets"
    );
    ledger
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: arbitrary admit/pop/cancel/shed
    /// interleavings never lose or duplicate a job, match the
    /// priority-then-FIFO model exactly, and keep the ledger balanced at
    /// every step.
    fn schedules_conserve_jobs_and_order(
        seed in 0u64..u64::MAX,
        cap in 1usize..12,
        steps in 1usize..400,
    ) {
        run_schedule(seed, cap, steps);
    }

    /// Tiny capacities shed a lot but still conserve; large schedules on
    /// cap=1 are the worst case for the bound check.
    fn cap_one_is_mostly_shed_but_balanced(
        seed in 0u64..u64::MAX,
        steps in 50usize..300,
    ) {
        let ledger = run_schedule(seed, 1, steps);
        prop_assert!(ledger.shed > 0, "cap-1 schedule of {steps} steps never shed");
    }
}

/// Deterministic spot check that the property harness itself distinguishes
/// outcomes (guards against a trivially-true battery).
#[test]
fn schedule_produces_all_terminal_buckets() {
    let ledger = run_schedule(7, 2, 200);
    assert!(ledger.completed > 0);
    assert!(ledger.failed > 0);
    assert!(ledger.shed > 0);
}
