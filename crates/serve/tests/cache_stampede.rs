//! Stampede behaviour: many submitters, one identical problem.
//!
//! With dedup + caching on, N concurrent submissions of the same matrix
//! must cost **one** worker solve: the first becomes the leader, the rest
//! either attach as coalescing followers (leader still in flight) or hit
//! the cache (leader already finished). Every returned result is bitwise
//! identical, and a follower cancelling mid-flight fails alone — it never
//! poisons the leader, the other followers, or the stored result.

use std::time::Duration;

use tg_eigen::EvdMethod;
use tg_matrix::gen;
use tg_serve::{FailReason, JobService, JobSpec, JobStatus, ServeConfig};

fn cfg(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_cap: 256,
        cache_bytes: 8 * 1024 * 1024,
        dedup: true,
        ..ServeConfig::default()
    }
}

fn assert_bits_equal(evd: &tg_eigen::Evd, reference: &tg_eigen::Evd) {
    assert_eq!(evd.eigenvalues.len(), reference.eigenvalues.len());
    for (x, y) in evd.eigenvalues.iter().zip(reference.eigenvalues.iter()) {
        assert_eq!(x.to_bits(), y.to_bits(), "eigenvalues differ bitwise");
    }
}

/// N threads race to submit the same matrix: exactly one worker solve,
/// N-1 submissions served by coalescing or the cache, all bitwise equal.
#[test]
fn concurrent_identical_submissions_solve_once() {
    const N: usize = 16;
    let n = 20;
    let method = EvdMethod::proposed_default(n);
    let a = gen::random_symmetric(n, 4242);
    let reference = tg_eigen::syevd(&mut a.clone(), &method, false).unwrap();

    let svc = JobService::start(cfg(2)).unwrap();
    let ids: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let (svc, a, method) = (&svc, &a, &method);
                scope.spawn(move || {
                    svc.submit(JobSpec::new(a.clone(), method.clone(), false))
                        .expect("queue_cap 256 never sheds 16 submissions")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for id in ids {
        let out = svc.wait(id);
        assert_eq!(
            out.status,
            JobStatus::Completed,
            "job {id} did not complete"
        );
        assert_bits_equal(out.result.as_ref().unwrap(), &reference);
    }
    let stats = svc.shutdown();
    let l = stats.ledger;
    assert_eq!(
        l.completed, 1,
        "N identical submissions must cost exactly one worker solve (ledger {l:?})"
    );
    assert_eq!(
        l.cache_hits + l.coalesced,
        (N - 1) as u64,
        "everyone else is served by the cache or by coalescing (ledger {l:?})"
    );
    assert!(l.balanced());
    assert!(l.quiescent());
}

/// A follower cancelling itself fails with `Cancelled` while the leader
/// and the remaining follower still complete with the clean result.
#[test]
fn cancelled_follower_does_not_poison_the_others() {
    let n = 20;
    let method = EvdMethod::proposed_default(n);
    let a = gen::random_symmetric(n, 555);
    let reference = tg_eigen::syevd(&mut a.clone(), &method, false).unwrap();

    // One worker + a slow blocker keeps the leader queued while the
    // followers attach and one of them cancels.
    let svc = JobService::start(cfg(1)).unwrap();
    let blocker_mat = gen::random_symmetric(96, 556);
    let blocker = svc
        .submit(JobSpec::new(
            blocker_mat,
            EvdMethod::proposed_default(96),
            true,
        ))
        .unwrap();
    let leader = svc
        .submit(JobSpec::new(a.clone(), method.clone(), false))
        .unwrap();
    let f1 = svc
        .submit(JobSpec::new(a.clone(), method.clone(), false))
        .unwrap();
    let f2 = svc
        .submit(JobSpec::new(a.clone(), method.clone(), false))
        .unwrap();
    assert!(
        svc.cancel(f1),
        "follower was already terminal before cancel"
    );

    assert!(svc.wait_quiescent(Duration::from_secs(60)));
    assert_eq!(svc.wait(blocker).status, JobStatus::Completed);

    let out_leader = svc.wait(leader);
    let out_f1 = svc.wait(f1);
    let out_f2 = svc.wait(f2);
    assert_eq!(
        out_f1.status,
        JobStatus::Failed(FailReason::Cancelled),
        "the cancelled follower fails with its own reason"
    );
    assert!(out_f1.result.is_none());
    // The leader may have been claimed before the followers attached (a
    // benign race); in every interleaving it completes cleanly and the
    // surviving follower gets the same bytes.
    assert_eq!(out_leader.status, JobStatus::Completed);
    assert_eq!(out_f2.status, JobStatus::Completed);
    assert_bits_equal(out_leader.result.as_ref().unwrap(), &reference);
    assert_bits_equal(out_f2.result.as_ref().unwrap(), &reference);

    let stats = svc.shutdown();
    assert!(stats.ledger.balanced());
    assert!(stats.ledger.quiescent());
}

/// Cancelling the *leader* while it is still queued promotes the first
/// live follower: the work is not lost, the remaining follower rides the
/// promoted job, and only the cancelled leader fails.
#[test]
fn cancelled_queued_leader_promotes_a_follower() {
    let n = 20;
    let method = EvdMethod::proposed_default(n);
    let a = gen::random_symmetric(n, 777);
    let reference = tg_eigen::syevd(&mut a.clone(), &method, false).unwrap();

    let svc = JobService::start(cfg(1)).unwrap();
    let blocker_mat = gen::random_symmetric(96, 778);
    let blocker = svc
        .submit(JobSpec::new(
            blocker_mat,
            EvdMethod::proposed_default(96),
            true,
        ))
        .unwrap();
    let leader = svc
        .submit(JobSpec::new(a.clone(), method.clone(), false))
        .unwrap();
    let f1 = svc
        .submit(JobSpec::new(a.clone(), method.clone(), false))
        .unwrap();
    let f2 = svc
        .submit(JobSpec::new(a.clone(), method.clone(), false))
        .unwrap();
    svc.cancel(leader);

    assert!(svc.wait_quiescent(Duration::from_secs(60)));
    assert_eq!(svc.wait(blocker).status, JobStatus::Completed);

    let out_leader = svc.wait(leader);
    let out_f1 = svc.wait(f1);
    let out_f2 = svc.wait(f2);
    match out_leader.status {
        JobStatus::Failed(FailReason::Cancelled) => {
            // The canonical interleaving: the worker was still on the
            // blocker, the queued leader died, and a follower took over.
            assert_eq!(out_f1.status, JobStatus::Completed);
            assert!(
                out_f1.attempts >= 1 || out_f2.attempts >= 1,
                "someone actually ran the promoted solve"
            );
        }
        // Benign race: the worker claimed the leader before the cancel
        // landed and the cooperative check only fires at attempt
        // boundaries, so the solve may already have finished cleanly.
        JobStatus::Completed => {}
        other => panic!("leader ended in unexpected state {other:?}"),
    }
    assert_eq!(out_f2.status, JobStatus::Completed);
    if let Some(evd) = out_f1.result.as_ref() {
        assert_bits_equal(evd, &reference);
    }
    assert_bits_equal(out_f2.result.as_ref().unwrap(), &reference);

    let stats = svc.shutdown();
    assert!(stats.ledger.balanced());
    assert!(stats.ledger.quiescent());
}
