//! Fault-driven behaviour: retries are exercised by *real* injected
//! faults from tg-check's instrumented sites — never mocked. Kept in its
//! own test binary because check sessions (and their armed fault plans)
//! are process-global; mixing them with fault-free service tests in one
//! binary would let an unrelated job absorb the fault.

use std::time::Duration;

use tg_check::{CheckConfig, CheckSession, FaultKind, FaultPlan};
use tg_eigen::{syevd, EvdMethod};
use tg_matrix::gen;
use tg_serve::{JobService, JobSpec, JobStatus, ServeConfig};

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        workers: 1,
        queue_cap: 8,
        max_retries: 2,
        retry_backoff: Duration::from_micros(100),
        ..ServeConfig::default()
    }
}

/// A NaN injected into the eigenvalue output is detected (fired-fault
/// delta + finiteness screen), retried after an arena scrub, and healed —
/// the final result is bitwise-identical to an uncorrupted direct solve.
#[test]
fn injected_nan_is_retried_to_a_bitwise_clean_result() {
    let n = 20;
    let method = EvdMethod::proposed_default(n);
    let a = gen::random_symmetric(n, 21);
    // Uncorrupted reference, computed outside any check session.
    let want = syevd(&mut a.clone(), &method, true).unwrap();

    let session = CheckSession::begin(CheckConfig::fast().with_faults(FaultPlan::single(
        "evd.values",
        FaultKind::Nan,
        3,
    )));
    let svc = JobService::start(serve_cfg()).unwrap();
    let id = svc
        .submit(JobSpec::new(a.clone(), method.clone(), true))
        .unwrap();
    let outcome = svc.wait(id);
    let stats = svc.shutdown();
    drop(session.finish());

    assert_eq!(outcome.status, JobStatus::Completed);
    // attempts ≥ 2 is the evidence the fault really fired and forced a
    // retry — a skipped fault would complete on the first attempt.
    assert!(
        outcome.attempts >= 2,
        "fault must have forced a retry (attempts = {})",
        outcome.attempts
    );
    assert!(stats.retries >= 1);
    let got = outcome.result.unwrap();
    assert_eq!(got.eigenvalues, want.eigenvalues);
    assert_eq!(got.eigenvectors, want.eigenvectors);
}

/// Silent corruption — a finite perturbation of one eigenvalue — passes
/// the NaN screen but is still caught by the fired-on-thread delta and
/// retried. This is the case that proves detection isn't just `is_finite`.
#[test]
fn silent_perturbation_is_detected_and_retried() {
    let n = 18;
    let method = EvdMethod::proposed_default(n);
    let a = gen::random_symmetric(n, 22);
    let want = syevd(&mut a.clone(), &method, false).unwrap();

    let _session = CheckSession::begin(CheckConfig::fast().with_faults(FaultPlan::single(
        "evd.values",
        FaultKind::Perturb(1e-2),
        1,
    )));
    let svc = JobService::start(serve_cfg()).unwrap();
    let id = svc.submit(JobSpec::new(a, method, false)).unwrap();
    let outcome = svc.wait(id);
    let stats = svc.shutdown();

    assert_eq!(outcome.status, JobStatus::Completed);
    assert!(outcome.attempts >= 2, "silent corruption was served as-is");
    assert!(stats.retries >= 1);
    assert_eq!(outcome.result.unwrap().eigenvalues, want.eigenvalues);
}

/// A whole seed-derived campaign (one fault armed per site) against a
/// multi-job workload: every job must end terminal within its deadline,
/// every completed job bitwise-matches the direct path, and the ledger
/// conserves. This is the in-tree miniature of `repro fault_campaign
/// --serve`.
#[test]
fn campaign_workload_quiesces_with_clean_results() {
    let n = 20;
    let method = EvdMethod::proposed_default(n);
    let problems: Vec<_> = (0..6).map(|s| gen::random_symmetric(n, 50 + s)).collect();
    let references: Vec<_> = problems
        .iter()
        .map(|a| syevd(&mut a.clone(), &method, true).unwrap())
        .collect();

    let _session =
        CheckSession::begin(CheckConfig::fast().with_faults(FaultPlan::campaign(0xC0FFEE)));
    let svc = JobService::start(ServeConfig {
        workers: 2,
        queue_cap: 8,
        max_retries: 3,
        retry_backoff: Duration::from_micros(100),
        ..ServeConfig::default()
    })
    .unwrap();
    let ids: Vec<_> = problems
        .iter()
        .map(|a| {
            svc.submit(JobSpec::new(a.clone(), method.clone(), true))
                .unwrap()
        })
        .collect();
    assert!(
        svc.wait_quiescent(Duration::from_secs(120)),
        "campaign workload hung"
    );
    for (id, want) in ids.into_iter().zip(&references) {
        let outcome = svc.wait(id);
        assert_eq!(
            outcome.status,
            JobStatus::Completed,
            "job {id} did not heal: {:?}",
            outcome.status
        );
        let got = outcome.result.unwrap();
        assert_eq!(got.eigenvalues, want.eigenvalues, "job {id} eigenvalues");
        assert_eq!(got.eigenvectors, want.eigenvectors, "job {id} eigenvectors");
    }
    let stats = svc.shutdown();
    assert!(stats.ledger.balanced());
    assert_eq!(stats.ledger.completed, 6);
}
