//! Service-level behaviour without fault injection: bitwise result parity
//! with the direct path, typed shedding, deadlines, cancellation, and
//! drain-on-shutdown. (Fault-driven retry lives in `service_faults.rs`,
//! its own binary, because check sessions are process-global.)

use std::time::Duration;

use tg_eigen::{syevd, EvdMethod};
use tg_matrix::gen;
use tg_serve::{FailReason, JobService, JobSpec, JobStatus, Priority, ServeConfig, SubmitError};

fn cfg(workers: usize, queue_cap: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_cap,
        ..ServeConfig::default()
    }
}

#[test]
fn completed_results_bitwise_match_direct_path() {
    let n = 20;
    let method = EvdMethod::proposed_default(n);
    let svc = JobService::start(cfg(2, 16)).unwrap();
    let problems: Vec<_> = (0..6).map(|s| gen::random_symmetric(n, 40 + s)).collect();
    let ids: Vec<_> = problems
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let p = Priority::ALL[i % 3];
            svc.submit(JobSpec::new(a.clone(), method.clone(), true).with_priority(p))
                .unwrap()
        })
        .collect();
    for (a, id) in problems.iter().zip(ids) {
        let outcome = svc.wait(id);
        assert_eq!(outcome.status, JobStatus::Completed);
        assert_eq!(outcome.attempts, 1);
        let got = outcome.result.expect("completed job carries a result");
        let want = syevd(&mut a.clone(), &method, true).unwrap();
        assert_eq!(got.eigenvalues, want.eigenvalues, "eigenvalues diverged");
        assert_eq!(got.eigenvectors, want.eigenvectors, "eigenvectors diverged");
    }
    let stats = svc.shutdown();
    assert!(stats.ledger.quiescent());
    assert_eq!(stats.ledger.completed, 6);
    assert_eq!(stats.retries, 0);
}

#[test]
fn overload_sheds_with_typed_rejection_and_conserves_jobs() {
    let n = 24;
    let method = EvdMethod::proposed_default(n);
    let svc = JobService::start(cfg(1, 1)).unwrap();
    // Pre-build the specs so submission is much faster than compute; with
    // queue_cap 1 and one worker, most of the burst must shed.
    let specs: Vec<_> = (0..24)
        .map(|s| JobSpec::new(gen::random_symmetric(n, 90 + s), method.clone(), false))
        .collect();
    let mut admitted = 0u64;
    let mut shed = 0u64;
    for spec in specs {
        match svc.submit(spec) {
            Ok(_) => admitted += 1,
            Err(SubmitError::Overloaded { queue_cap, .. }) => {
                assert_eq!(queue_cap, 1);
                shed += 1;
            }
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    assert!(shed > 0, "24-job burst at cap 1 never shed");
    assert!(
        svc.wait_quiescent(Duration::from_secs(120)),
        "service failed to quiesce"
    );
    let table = svc.status_table();
    assert_eq!(table.len(), 24, "every submission owns a status row");
    assert_eq!(
        table.iter().filter(|r| r.status_label == "shed").count() as u64,
        shed
    );
    let stats = svc.shutdown();
    assert_eq!(stats.ledger.submitted, 24);
    assert_eq!(stats.ledger.shed, shed);
    assert_eq!(
        stats.ledger.completed + stats.ledger.failed,
        admitted,
        "an admitted job vanished"
    );
    assert!(stats.ledger.balanced());
}

#[test]
fn expired_deadline_fails_typed_without_compute() {
    let n = 16;
    let svc = JobService::start(cfg(1, 8)).unwrap();
    let spec = JobSpec::new(
        gen::random_symmetric(n, 3),
        EvdMethod::proposed_default(n),
        true,
    )
    .with_deadline(Duration::from_nanos(1));
    let id = svc.submit(spec).unwrap();
    let outcome = svc.wait(id);
    assert_eq!(
        outcome.status,
        JobStatus::Failed(FailReason::DeadlineExceeded)
    );
    assert_eq!(outcome.attempts, 0, "expired job must not burn compute");
    assert!(outcome.result.is_none());
    let stats = svc.shutdown();
    assert_eq!(stats.ledger.failed, 1);
    assert!(stats.ledger.balanced());
}

#[test]
fn cancelling_a_queued_job_is_immediate_and_typed() {
    let n_long = 96; // keeps the single worker busy while we race it
    let svc = JobService::start(cfg(1, 8)).unwrap();
    let blocker = svc
        .submit(JobSpec::new(
            gen::random_symmetric(n_long, 5),
            EvdMethod::proposed_default(n_long),
            true,
        ))
        .unwrap();
    // Wait until the worker has actually claimed the blocker.
    while svc.status_table()[blocker as usize].status_label == "queued" {
        std::thread::yield_now();
    }
    let victim = svc
        .submit(JobSpec::new(
            gen::random_symmetric(16, 6),
            EvdMethod::proposed_default(16),
            true,
        ))
        .unwrap();
    assert!(svc.cancel(victim), "queued job must be cancellable");
    let outcome = svc.wait(victim);
    assert_eq!(outcome.status, JobStatus::Failed(FailReason::Cancelled));
    assert_eq!(outcome.attempts, 0);
    // Cancelling a terminal job is a no-op.
    assert!(!svc.cancel(victim));
    // The blocker is unaffected.
    let blocked = svc.wait(blocker);
    assert_eq!(blocked.status, JobStatus::Completed);
    let stats = svc.shutdown();
    assert!(stats.ledger.balanced());
    assert_eq!((stats.ledger.completed, stats.ledger.failed), (1, 1));
}

#[test]
fn shutdown_drains_admitted_jobs() {
    let n = 16;
    let method = EvdMethod::proposed_default(n);
    let svc = JobService::start(cfg(2, 16)).unwrap();
    for s in 0..8 {
        svc.submit(JobSpec::new(
            gen::random_symmetric(n, 70 + s),
            method.clone(),
            false,
        ))
        .unwrap();
    }
    let stats = svc.shutdown(); // immediately: queue is still full
    assert!(stats.ledger.quiescent(), "shutdown left pending jobs");
    assert_eq!(stats.ledger.completed, 8, "drain must finish admitted work");
}

#[test]
fn service_restarts_cleanly_after_shutdown() {
    let svc = JobService::start(cfg(1, 4)).unwrap();
    let stats = svc.shutdown();
    assert!(stats.ledger.quiescent());
    // A fresh service boots fine afterwards (no leaked global state), and
    // dropping a handle without an explicit shutdown also joins cleanly.
    let svc2 = JobService::start(cfg(1, 4)).unwrap();
    drop(svc2);
}

#[test]
fn config_rejections_are_typed() {
    use tg_serve::ConfigError;
    assert_eq!(
        JobService::start(ServeConfig {
            workers: 1,
            queue_cap: 0,
            ..ServeConfig::default()
        })
        .err(),
        Some(ConfigError::ZeroQueueCap)
    );
    assert_eq!(
        JobService::start(ServeConfig {
            workers: 1,
            default_deadline: Duration::ZERO,
            ..ServeConfig::default()
        })
        .err(),
        Some(ConfigError::ZeroDeadline)
    );
}

#[test]
fn priority_classes_drain_high_first_under_one_worker() {
    let n_long = 96;
    let n = 16;
    let svc = JobService::start(cfg(1, 16)).unwrap();
    let blocker = svc
        .submit(JobSpec::new(
            gen::random_symmetric(n_long, 8),
            EvdMethod::proposed_default(n_long),
            true,
        ))
        .unwrap();
    while svc.status_table()[blocker as usize].status_label == "queued" {
        std::thread::yield_now();
    }
    // Queue while the worker is pinned: low first, then high.
    let low = svc
        .submit(
            JobSpec::new(
                gen::random_symmetric(n, 9),
                EvdMethod::proposed_default(n),
                false,
            )
            .with_priority(Priority::Low),
        )
        .unwrap();
    let high = svc
        .submit(
            JobSpec::new(
                gen::random_symmetric(n, 10),
                EvdMethod::proposed_default(n),
                false,
            )
            .with_priority(Priority::High),
        )
        .unwrap();
    let high_out = svc.wait(high);
    let low_out = svc.wait(low);
    assert_eq!(high_out.status, JobStatus::Completed);
    assert_eq!(low_out.status, JobStatus::Completed);
    // The single worker served high before low despite admission order —
    // queue wait tells the story even after both complete.
    assert!(
        high_out.queue_wait <= low_out.queue_wait,
        "high-priority job waited longer than the low-priority one \
         (high {:?} vs low {:?})",
        high_out.queue_wait,
        low_out.queue_wait
    );
    svc.shutdown();
}
