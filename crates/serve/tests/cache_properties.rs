//! Property battery for the content-addressed result cache.
//!
//! Four families, mirroring `queue_properties.rs`:
//!
//! * **correctness of hits** — serving a submission from the cache returns
//!   a result bitwise-identical to a fresh direct solve of the same input;
//! * **budget** — no insert/lookup sequence ever leaves `live_bytes`
//!   above the configured byte budget;
//! * **model equivalence** — arbitrary insert/lookup schedules against
//!   [`EvdCache`] match a flat `HashMap` reference model implementing the
//!   same LRU-by-stamp rule, hit for hit, eviction for eviction;
//! * **key injectivity in practice** — distinct equal-shape matrices never
//!   derive colliding [`CacheKey`]s across a seed sweep.

use std::collections::HashMap;

use proptest::prelude::*;
use tg_batch::ShapeClass;
use tg_eigen::{Evd, EvdMethod};
use tg_matrix::gen;
use tg_serve::{
    result_bytes, CacheKey, EvdCache, JobService, JobSpec, JobStatus, ServeConfig, ENTRY_OVERHEAD,
};

fn splitmix64(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn evd_of(len: usize, seed: u64) -> Evd {
    Evd {
        eigenvalues: (0..len).map(|i| seed as f64 + i as f64).collect(),
        eigenvectors: None,
    }
}

fn key_of(tag: u64) -> CacheKey {
    CacheKey {
        digest: tag,
        class: ShapeClass { n: 8, b: 2, k: 0 },
        method_tag: 2,
        want_vectors: false,
    }
}

/// Flat reference model of the cache: same byte math, same LRU-by-stamp
/// eviction rule, implemented over a plain `HashMap` with a linear scan.
struct Model {
    budget: u64,
    map: HashMap<u64, (Vec<u64>, u64, u64)>, // tag -> (value bits, bytes, stamp)
    live: u64,
    tick: u64,
}

impl Model {
    fn new(budget: u64) -> Model {
        Model {
            budget,
            map: HashMap::new(),
            live: 0,
            tick: 0,
        }
    }

    fn lookup(&mut self, tag: u64) -> Option<Vec<u64>> {
        let (bits, _, stamp) = self.map.get_mut(&tag)?;
        self.tick += 1;
        *stamp = self.tick;
        Some(bits.clone())
    }

    /// Returns tags evicted (in order), or `None` for an oversize reject.
    fn insert(&mut self, tag: u64, evd: &Evd) -> Option<Vec<u64>> {
        let bytes = evd.eigenvalues.len() as u64 * 8 + ENTRY_OVERHEAD;
        if bytes > self.budget {
            return None;
        }
        if let Some((_, old, _)) = self.map.remove(&tag) {
            self.live -= old;
        }
        let mut evicted = Vec::new();
        while self.live + bytes > self.budget {
            let lru = *self
                .map
                .iter()
                .min_by_key(|(_, (_, _, stamp))| *stamp)
                .map(|(k, _)| k)
                .expect("over budget implies non-empty");
            let (_, b, _) = self.map.remove(&lru).unwrap();
            self.live -= b;
            evicted.push(lru);
        }
        self.tick += 1;
        self.map.insert(
            tag,
            (
                evd.eigenvalues.iter().map(|x| x.to_bits()).collect(),
                bytes,
                self.tick,
            ),
        );
        self.live += bytes;
        Some(evicted)
    }
}

/// Drives one seed-derived schedule against cache and model in lockstep.
fn run_schedule(seed: u64, budget: u64, steps: usize) {
    let mut s = seed;
    let mut cache = EvdCache::new(budget);
    let mut model = Model::new(budget);
    // A small tag universe so lookups actually hit.
    const TAGS: u64 = 12;
    for _ in 0..steps {
        let r = splitmix64(&mut s);
        let tag = (r >> 8) % TAGS;
        if r.is_multiple_of(2) {
            // Value length varies with the tag so entries have different
            // sizes (exercises multi-entry eviction); content derives from
            // the tag so a model hit can be checked bit for bit.
            let evd = evd_of(1 + (tag as usize % 7) * 3, tag * 1000);
            let got = cache.insert(key_of(tag), &evd);
            match model.insert(tag, &evd) {
                None => assert_eq!(got, 0, "cache stored an oversize entry the model rejected"),
                Some(evicted_tags) => {
                    let expect_bytes: u64 = evicted_tags
                        .iter()
                        .map(|t| (1 + (*t as usize % 7) * 3) as u64 * 8 + ENTRY_OVERHEAD)
                        .sum();
                    assert_eq!(got, expect_bytes, "evicted bytes diverged from model");
                }
            }
        } else {
            let got = cache.lookup(&key_of(tag));
            let want = model.lookup(tag);
            match (got, want) {
                (None, None) => {}
                (Some(evd), Some(bits)) => {
                    let got_bits: Vec<u64> = evd.eigenvalues.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(got_bits, bits, "hit returned different bytes than stored");
                }
                (g, w) => panic!(
                    "hit/miss diverged from model: cache={:?} model={:?}",
                    g.is_some(),
                    w.is_some()
                ),
            }
        }
        // Structural invariants, checked after every step.
        assert!(
            cache.live_bytes() <= budget,
            "byte budget exceeded: {} > {budget}",
            cache.live_bytes()
        );
        assert_eq!(cache.entries(), model.map.len(), "entry count diverged");
        assert_eq!(cache.live_bytes(), model.live, "live bytes diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: arbitrary insert/lookup schedules match the
    /// reference model exactly and never exceed the byte budget.
    fn schedules_match_model_and_respect_budget(
        seed in 0u64..u64::MAX,
        budget in 64u64..2048,
        steps in 1usize..300,
    ) {
        run_schedule(seed, budget, steps);
    }

    /// Tiny budgets churn constantly but still never go over.
    fn minimal_budget_is_all_eviction_but_bounded(
        seed in 0u64..u64::MAX,
        steps in 20usize..200,
    ) {
        // Fits exactly one of the smallest entries (8 + 64 = 72).
        run_schedule(seed, 96, steps);
    }

    /// Distinct equal-shape matrices never collide: the digest covers
    /// every stored byte, so two different seeds (different content, same
    /// `(n, method, want_vectors)`) must produce different keys.
    fn distinct_matrices_never_collide(
        seed_a in 0u64..1_000_000,
        seed_b in 0u64..1_000_000,
        n in 4usize..24,
    ) {
        let seed_b = if seed_a == seed_b { seed_b + 1 } else { seed_b };
        let method = EvdMethod::proposed_default(n);
        let a = gen::random_symmetric(n, seed_a);
        let b = gen::random_symmetric(n, seed_b);
        let ka = CacheKey::derive(&a, &method, true);
        let kb = CacheKey::derive(&b, &method, true);
        prop_assert_eq!(ka.class, kb.class);
        prop_assert!(ka != kb, "distinct content collided on one key");
    }
}

/// End-to-end hit correctness through the service: the second submission
/// of the same spec is served from the cache (no second worker solve) and
/// its result is bitwise-identical to both the first submission and a
/// fresh direct solve.
#[test]
fn cache_hits_are_bitwise_identical_to_fresh_solves() {
    for n in [12usize, 24, 33] {
        let method = EvdMethod::proposed_default(n);
        let a = gen::random_symmetric(n, 77 + n as u64);
        let svc = JobService::start(ServeConfig {
            workers: 2,
            cache_bytes: 8 * 1024 * 1024,
            // verify_hits makes the service itself assert the property on
            // every hit, on top of the explicit checks below.
            verify_hits: true,
            ..ServeConfig::default()
        })
        .unwrap();

        let first = svc
            .submit(JobSpec::new(a.clone(), method.clone(), true))
            .unwrap();
        let miss = svc.wait(first);
        assert_eq!(miss.status, JobStatus::Completed);
        assert!(miss.attempts >= 1, "the miss path runs a worker solve");

        let second = svc
            .submit(JobSpec::new(a.clone(), method.clone(), true))
            .unwrap();
        let hit = svc.wait(second);
        assert_eq!(hit.status, JobStatus::Completed);
        assert_eq!(hit.attempts, 0, "a cache hit never runs an attempt");

        let direct = tg_eigen::syevd(&mut a.clone(), &method, true).unwrap();
        for out in [&miss, &hit] {
            let evd = out.result.as_ref().unwrap();
            assert_eq!(evd.eigenvalues.len(), direct.eigenvalues.len());
            for (x, y) in evd.eigenvalues.iter().zip(direct.eigenvalues.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "eigenvalues differ bitwise");
            }
            let (v, dv) = (
                evd.eigenvectors.as_ref().unwrap(),
                direct.eigenvectors.as_ref().unwrap(),
            );
            for (x, y) in v.as_slice().iter().zip(dv.as_slice().iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "eigenvectors differ bitwise");
            }
        }

        let stats = svc.shutdown();
        assert_eq!(stats.ledger.cache_hits, 1);
        assert_eq!(stats.ledger.completed, 1);
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.insertions, 1);
    }
}

/// `result_bytes` is exactly the arena math the budget reasoning assumes.
#[test]
fn result_bytes_matches_documented_formula() {
    let vals_only = evd_of(10, 0);
    assert_eq!(result_bytes(&vals_only), 10 * 8 + ENTRY_OVERHEAD);
    let with_vecs = Evd {
        eigenvalues: vec![0.0; 6],
        eigenvectors: Some(tg_matrix::Mat::zeros(6, 6)),
    };
    assert_eq!(result_bytes(&with_vecs), (6 + 36) * 8 + ENTRY_OVERHEAD);
}
