//! Content-addressed EVD result cache with in-flight coalescing support.
//!
//! # Why caching is *sound* here
//!
//! Real EVD traffic is repetitive: the same covariance or graph-Laplacian
//! matrices get resubmitted across jobs. Because the solver stack is
//! **bitwise-deterministic** end to end (the PR 2 workspace contract, the
//! PR 5 parallel-GEMM contract, the PR 7 serving contract), a stored
//! result *is* the result a fresh solve would produce — bit for bit. That
//! turns caching from an approximation into pure dedup: a hit returns the
//! same bytes the worker pool would have computed. `docs/CACHING.md` walks
//! through the full argument.
//!
//! # Key derivation
//!
//! [`CacheKey`] identifies a solve by **content**: a splitmix64-based
//! digest of the input matrix bytes ([`tg_matrix::digest`]) combined with
//! the solve configuration — shape class `(n, b, k)` (the existing
//! [`ShapeClass`] math), the method variant and its bitwise-relevant
//! parameters, and `want_vectors`. `parallel_sweeps` is deliberately
//! **excluded**: `tests/bc_determinism.rs` pins results bitwise-identical
//! across sweep counts, so including it would only fragment the cache.
//! `want_vectors` is **included**: a values-only solve finishes through
//! `sterf`-style iteration while a vectors solve runs divide & conquer,
//! and their eigenvalues are not bitwise-interchangeable.
//!
//! # Safety rules
//!
//! Only results from a **clean attempt** are insertable: the service's
//! attempt classifier already rejects results produced while an injected
//! fault fired, results containing non-finite values, solver errors, and
//! panics — so nothing mid-retry can reach [`EvdCache::insert`].
//! Fallback-path results are cacheable because the serial reference path
//! is bitwise-identical to the arena path by contract. A debug verify
//! knob (`ServeConfig::verify_hits` / `TG_CACHE_VERIFY=1`) re-solves on
//! every hit and asserts bitwise equality.
//!
//! # Storage
//!
//! A bounded LRU keyed by [`CacheKey`]: per-entry sizes use the arena's
//! byte math (stored `f64`s × 8, plus fixed bookkeeping), a byte budget
//! caps the total, and insertion evicts least-recently-used entries until
//! the new entry fits. An entry larger than the whole budget is never
//! stored. Lookups and insertions both refresh recency.

use std::collections::HashMap;

use tg_batch::ShapeClass;
use tg_eigen::{Evd, EvdMethod};
use tg_matrix::{ContentHasher, Mat};

/// Content-addressed identity of one solve: input-matrix digest plus the
/// bitwise-relevant solve configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Digest of the input matrix (shape + every stored byte).
    pub digest: u64,
    /// Shape class `(n, b, k)` — the same triple the workspace arena keys
    /// buffers by.
    pub class: ShapeClass,
    /// Method variant discriminant (parameters are folded into `digest`).
    pub method_tag: u8,
    /// Whether eigenvectors were requested — values-only and with-vectors
    /// solves finish through different tridiagonal eigensolvers and are
    /// not bitwise-interchangeable.
    pub want_vectors: bool,
}

impl CacheKey {
    /// Derives the key for solving `matrix` with `method`. Hashes every
    /// byte of the matrix — `O(n²)` — so callers should derive the key
    /// *outside* any service lock.
    pub fn derive(matrix: &Mat, method: &EvdMethod, want_vectors: bool) -> CacheKey {
        let n = matrix.nrows();
        let mut h = ContentHasher::new();
        h.write_u64(n as u64);
        h.write_u64(matrix.ncols() as u64);
        h.write_f64_slice(matrix.as_slice());
        let method_tag = match method {
            EvdMethod::CusolverLike { nb } => {
                h.write_u64(*nb as u64);
                0u8
            }
            EvdMethod::MagmaLike { b } => {
                h.write_u64(*b as u64);
                1u8
            }
            // `parallel_sweeps` and `lookahead` intentionally not hashed:
            // bulge-chasing results are bitwise-identical across sweep
            // counts (tests/bc_determinism.rs) and stage-1 look-ahead is
            // bitwise-identical to the serial path
            // (tests/stage1_determinism.rs), so folding either in would
            // split identical results across distinct keys.
            EvdMethod::Proposed {
                b,
                k,
                parallel_sweeps: _,
                backtransform_k,
                lookahead: _,
            } => {
                h.write_u64(*b as u64);
                h.write_u64(*k as u64);
                h.write_u64(*backtransform_k as u64);
                2u8
            }
        };
        h.write_u64(method_tag as u64);
        h.write_u64(want_vectors as u64);
        CacheKey {
            digest: h.finish(),
            class: ShapeClass::for_evd(n, method),
            method_tag,
            want_vectors,
        }
    }
}

/// Bytes a stored result occupies, using the arena's size math (stored
/// `f64`s × 8) plus fixed per-entry bookkeeping (key, stamps, map slot).
pub fn result_bytes(evd: &Evd) -> u64 {
    let values = evd.eigenvalues.len() as u64;
    let vectors = evd
        .eigenvectors
        .as_ref()
        .map(|v| (v.nrows() * v.ncols()) as u64)
        .unwrap_or(0);
    (values + vectors) * 8 + ENTRY_OVERHEAD
}

/// Fixed accounting overhead charged per entry (key + LRU stamp + map
/// slot). Deliberately a documented constant rather than
/// `size_of::<Entry>()` so the byte budget means the same thing on every
/// host and the property tests can reason about it exactly.
pub const ENTRY_OVERHEAD: u64 = 64;

/// Monotonic counters for one cache's lifetime (all saturating reads,
/// snapshot via [`EvdCache::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a stored result.
    pub hits: u64,
    /// Lookups that found nothing (including lookups on a disabled cache).
    pub misses: u64,
    /// Results stored.
    pub insertions: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Bytes released by those evictions.
    pub evicted_bytes: u64,
    /// Results too large for the whole budget, never stored.
    pub oversize_rejections: u64,
}

struct Entry {
    evd: Evd,
    bytes: u64,
    last_used: u64,
}

/// Bounded, byte-budgeted LRU store of completed EVD results.
///
/// Single-threaded by design (the service guards it with its state mutex,
/// mirroring [`crate::BoundedQueue`]), which keeps it directly drivable by
/// the model-based property battery in `tests/cache_properties.rs`.
pub struct EvdCache {
    budget: u64,
    map: HashMap<CacheKey, Entry>,
    live_bytes: u64,
    /// Monotonic recency clock: bumped on every lookup hit and insert.
    tick: u64,
    stats: CacheStats,
}

impl EvdCache {
    /// An empty cache with a total byte budget. `budget == 0` disables
    /// storage entirely (every lookup misses, every insert is rejected).
    pub fn new(budget: u64) -> EvdCache {
        EvdCache {
            budget,
            map: HashMap::new(),
            live_bytes: 0,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Whether a non-zero byte budget was configured.
    pub fn enabled(&self) -> bool {
        self.budget > 0
    }

    /// Configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently stored (always ≤ [`budget`](Self::budget)).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Entries currently stored.
    pub fn entries(&self) -> usize {
        self.map.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Returns a clone of the stored result for `key`, refreshing its
    /// recency, or `None` (counted as a miss).
    pub fn lookup(&mut self, key: &CacheKey) -> Option<Evd> {
        match self.map.get_mut(key) {
            Some(entry) => {
                self.tick += 1;
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(entry.evd.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores `evd` under `key`, evicting least-recently-used entries
    /// until the byte budget holds. Returns the bytes evicted to make
    /// room (0 when nothing was displaced). A result larger than the
    /// whole budget is rejected without disturbing the cache; re-inserting
    /// an existing key replaces the entry (refreshing recency).
    pub fn insert(&mut self, key: CacheKey, evd: &Evd) -> u64 {
        let bytes = result_bytes(evd);
        if bytes > self.budget {
            self.stats.oversize_rejections += 1;
            return 0;
        }
        if let Some(old) = self.map.remove(&key) {
            // Replacement (same content by construction — the key is the
            // content); release the old accounting first.
            self.live_bytes -= old.bytes;
        }
        let mut evicted = 0u64;
        while self.live_bytes + bytes > self.budget {
            let lru = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("live_bytes > 0 implies at least one entry");
            let dropped = self.map.remove(&lru).expect("key just observed");
            self.live_bytes -= dropped.bytes;
            evicted += dropped.bytes;
            self.stats.evictions += 1;
            self.stats.evicted_bytes += dropped.bytes;
        }
        self.tick += 1;
        self.map.insert(
            key,
            Entry {
                evd: evd.clone(),
                bytes,
                last_used: self.tick,
            },
        );
        self.live_bytes += bytes;
        self.stats.insertions += 1;
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evd_of(n: usize, seed: f64) -> Evd {
        Evd {
            eigenvalues: (0..n).map(|i| seed + i as f64).collect(),
            eigenvectors: None,
        }
    }

    fn key_of(tag: u64) -> CacheKey {
        CacheKey {
            digest: tag,
            class: ShapeClass { n: 4, b: 2, k: 0 },
            method_tag: 2,
            want_vectors: false,
        }
    }

    #[test]
    fn lookup_hits_after_insert_and_respects_budget() {
        // Each 4-value entry costs 4*8 + 64 = 96 bytes; budget fits two.
        let mut c = EvdCache::new(200);
        assert!(c.lookup(&key_of(1)).is_none());
        c.insert(key_of(1), &evd_of(4, 1.0));
        c.insert(key_of(2), &evd_of(4, 2.0));
        assert_eq!(c.entries(), 2);
        assert_eq!(c.live_bytes(), 192);
        assert_eq!(c.lookup(&key_of(1)).unwrap().eigenvalues[0], 1.0);
        // Key 2 is now LRU; a third insert evicts it, not key 1.
        let evicted = c.insert(key_of(3), &evd_of(4, 3.0));
        assert_eq!(evicted, 96);
        assert!(c.lookup(&key_of(2)).is_none());
        assert!(c.lookup(&key_of(1)).is_some());
        assert!(c.lookup(&key_of(3)).is_some());
        assert!(c.live_bytes() <= c.budget());
    }

    #[test]
    fn oversize_results_are_never_stored() {
        let mut c = EvdCache::new(100); // entry would be 8*8+64 = 128 > 100
        c.insert(key_of(1), &evd_of(8, 0.0));
        assert_eq!(c.entries(), 0);
        assert_eq!(c.stats().oversize_rejections, 1);
        assert_eq!(c.live_bytes(), 0);
    }

    #[test]
    fn zero_budget_disables_storage() {
        let mut c = EvdCache::new(0);
        assert!(!c.enabled());
        c.insert(key_of(1), &evd_of(1, 0.0));
        assert!(c.lookup(&key_of(1)).is_none());
        assert_eq!(c.entries(), 0);
    }

    #[test]
    fn reinsert_replaces_without_double_accounting() {
        let mut c = EvdCache::new(1000);
        c.insert(key_of(1), &evd_of(4, 1.0));
        let before = c.live_bytes();
        c.insert(key_of(1), &evd_of(4, 1.0));
        assert_eq!(c.live_bytes(), before);
        assert_eq!(c.entries(), 1);
    }

    #[test]
    fn key_depends_on_matrix_bytes_not_just_shape() {
        let a = tg_matrix::gen::random_symmetric(6, 1);
        let b = tg_matrix::gen::random_symmetric(6, 2);
        let ka = CacheKey::derive(&a, &EvdMethod::proposed_default(6), false);
        let kb = CacheKey::derive(&b, &EvdMethod::proposed_default(6), false);
        assert_eq!(ka.class, kb.class);
        assert_ne!(ka, kb, "equal-shape matrices must not collide");
    }

    #[test]
    fn key_separates_want_vectors_and_methods() {
        let a = tg_matrix::gen::random_symmetric(6, 3);
        let m = EvdMethod::proposed_default(6);
        assert_ne!(
            CacheKey::derive(&a, &m, false),
            CacheKey::derive(&a, &m, true)
        );
        assert_ne!(
            CacheKey::derive(&a, &m, false),
            CacheKey::derive(&a, &EvdMethod::CusolverLike { nb: 32 }, false)
        );
    }

    #[test]
    fn key_ignores_parallel_sweeps() {
        let a = tg_matrix::gen::random_symmetric(8, 4);
        let base = EvdMethod::Proposed {
            b: 2,
            k: 4,
            parallel_sweeps: 1,
            backtransform_k: 8,
            lookahead: true,
        };
        let more_sweeps = EvdMethod::Proposed {
            b: 2,
            k: 4,
            parallel_sweeps: 4,
            backtransform_k: 8,
            lookahead: true,
        };
        assert_eq!(
            CacheKey::derive(&a, &base, true),
            CacheKey::derive(&a, &more_sweeps, true),
            "bitwise-invariant knobs must not fragment the cache"
        );
    }
}
