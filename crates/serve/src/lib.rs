//! tg-serve — a long-running EVD/tridiagonalization **job service** over
//! the batched solver stack.
//!
//! The batch layer (`tg-batch`) answers "solve these `k` problems now";
//! this crate answers the serving question the paper's batched workloads
//! raise in practice: requests arrive *over time*, at rates the machine
//! may not sustain, and callers need bounded latency rather than eventual
//! completion. The service provides:
//!
//! * a **bounded priority queue** ([`BoundedQueue`]): High/Normal/Low
//!   classes, FIFO within a class, total occupancy capped;
//! * **load shedding**: admission never blocks — a saturated queue sheds
//!   the submission with a typed [`SubmitError::Overloaded`];
//! * **per-job deadlines** and cooperative **cancellation**;
//! * **retry with deterministic exponential backoff** on transient
//!   failures (injected faults, non-finite results, solver errors,
//!   panics), falling back to the serial reference path when the
//!   leased-arena attempts are exhausted;
//! * a **content-addressed result cache** ([`EvdCache`]): submissions
//!   whose matrix bytes and solve configuration hash to a stored clean
//!   result are answered at admission without a worker solve — sound
//!   because the whole stack is bitwise-deterministic (`docs/CACHING.md`);
//! * **in-flight request coalescing** (`dedup`): a submission identical
//!   to a queued or running job attaches as a follower and receives that
//!   job's result; a failing leader *promotes* its first live follower
//!   rather than poisoning it;
//! * **conservation accounting** ([`Ledger`]): at quiescence,
//!   `shed + completed + failed + cache_hits + coalesced == submitted` —
//!   no job is ever lost or double-counted.
//!
//! Completed results are **bitwise-identical** to the direct
//! [`tg_eigen::syevd`] path regardless of worker count, queue pressure,
//! retries, or fallback — see the determinism notes on [`service`].
//!
//! ```
//! use tg_serve::{JobService, JobSpec, ServeConfig};
//! use tg_eigen::EvdMethod;
//! use tg_matrix::gen;
//!
//! let svc = JobService::start(ServeConfig {
//!     workers: 2,
//!     ..ServeConfig::default()
//! })
//! .unwrap();
//! let a = gen::random_symmetric(16, 7);
//! let id = svc
//!     .submit(JobSpec::new(a.clone(), EvdMethod::proposed_default(16), true))
//!     .unwrap();
//! let outcome = svc.wait(id);
//! let evd = outcome.result.unwrap();
//! // identical to the direct path, bit for bit
//! let direct = tg_eigen::syevd(&mut a.clone(), &EvdMethod::proposed_default(16), true).unwrap();
//! assert_eq!(evd.eigenvalues, direct.eigenvalues);
//! let stats = svc.shutdown();
//! assert!(stats.ledger.quiescent());
//! ```

pub mod cache;
pub mod job;
pub mod queue;
pub mod service;

pub use cache::{result_bytes, CacheKey, CacheStats, EvdCache, ENTRY_OVERHEAD};
pub use job::{render_status_table, FailReason, JobId, JobOutcome, JobSpec, JobStatus, StatusRow};
pub use queue::{BoundedQueue, Ledger, Priority, QueueFull, Ticket};
pub use service::{ConfigError, JobService, ServeConfig, ServiceStats, SubmitError};
