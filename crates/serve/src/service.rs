//! The job service: worker pool, admission, deadlines, retries, fallback,
//! and load shedding around the batched-EVD machinery.
//!
//! # Execution model
//!
//! [`JobService::start`] validates its config (rejecting bad `TG_THREADS`
//! at startup with a typed error — never mid-request) and spawns a fixed
//! worker pool. [`submit`](JobService::submit) either admits a job into
//! the bounded priority queue or *sheds* it with a typed
//! [`SubmitError::Overloaded`] — admission never blocks, which is what
//! keeps an open-loop overload survivable. Workers pull jobs in priority
//! order (FIFO within a class) and run each through the same
//! `syevd_ws`-on-a-leased-arena path the batch scheduler uses.
//!
//! # Failure handling
//!
//! An attempt is classified *transient* when (a) an armed `tg-check` fault
//! fired on the worker thread during the attempt (the machine-check-style
//! signal — see [`tg_check::fault::fired_on_this_thread`]), (b) the result
//! contains non-finite values, (c) the solver returned an error, or (d)
//! the attempt panicked. Transient failures are retried with deterministic
//! exponential backoff after scrubbing the worker's arena (so a poisoned
//! buffer cannot leak into the retry — the lease guard already repaired
//! the accounting if the attempt unwound). When the leased-arena attempts
//! are exhausted the job falls back to the serial reference path (plain
//! [`tg_eigen::syevd`] on a fresh allocation pool); only if that also
//! fails does the job end as [`FailReason::Exhausted`].
//!
//! # Determinism contract
//!
//! A completed job's result is **bitwise-identical** to calling
//! [`tg_eigen::syevd`] directly on the same input: the arena path carries
//! the PR 2 workspace contract, the fallback *is* the direct path, and a
//! retry recomputes from the pristine input matrix. Admission order,
//! worker count, shedding, and retries decide *whether and when* a job
//! completes — never what its result contains.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tg_batch::{CancelToken, ShapeClass, WorkspaceArena};
use tg_blas::threads::ThreadsConfigError;
use tg_eigen::{syevd, Evd};

use crate::cache::{CacheKey, CacheStats, EvdCache};
use crate::job::{FailReason, JobId, JobOutcome, JobSpec, JobStatus, StatusRow};
use crate::queue::{BoundedQueue, Ledger, Priority, Ticket};

/// Service configuration. `Default` gives a production-shaped setup;
/// tests tighten the knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads. `0` = resolve from `TG_THREADS`/auto via the
    /// *strict* [`tg_blas::threads::try_worker_threads`] — an invalid
    /// override fails startup instead of silently running misconfigured.
    pub workers: usize,
    /// Bound on queued (admitted, not yet running) jobs — the load-
    /// shedding threshold.
    pub queue_cap: usize,
    /// Deadline for jobs that don't carry their own.
    pub default_deadline: Duration,
    /// Transient-failure retries per job on the leased-arena path (the
    /// job's first attempt is not a retry).
    pub max_retries: u32,
    /// Base backoff before retry `k` sleeps `base · 2^k`, clipped to the
    /// job's remaining deadline budget.
    pub retry_backoff: Duration,
    /// After exhausting retries, make one final attempt through the
    /// serial reference path (plain `syevd`, fresh allocations).
    pub serial_fallback: bool,
    /// Byte budget for the content-addressed result cache (`0` disables
    /// caching). Sound because completed results are bitwise-deterministic
    /// — see `docs/CACHING.md`.
    pub cache_bytes: u64,
    /// Enables in-flight request coalescing: a submission whose content
    /// key matches a queued or running job attaches as a follower and
    /// receives that job's result instead of entering the worker queue.
    /// Independent of `cache_bytes` (dedup needs no storage).
    pub dedup: bool,
    /// Debug knob: re-solve on every cache hit through the direct
    /// reference path and panic unless the stored result is bitwise
    /// identical. Also enabled by `TG_CACHE_VERIFY=1`. Turns O(1) hits
    /// into full solves — for tests and soak gates only.
    pub verify_hits: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            queue_cap: 64,
            default_deadline: Duration::from_secs(30),
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            serial_fallback: true,
            cache_bytes: 0,
            dedup: false,
            verify_hits: false,
        }
    }
}

/// Startup-time configuration rejection. The service refuses to boot on
/// any of these; nothing is ever "fixed up" silently.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `TG_THREADS` was set but invalid (zero / non-numeric).
    Threads(ThreadsConfigError),
    /// `queue_cap == 0` would shed every submission.
    ZeroQueueCap,
    /// A zero default deadline would expire every job at admission.
    ZeroDeadline,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Threads(e) => write!(f, "worker-thread config rejected: {e}"),
            ConfigError::ZeroQueueCap => write!(f, "queue_cap must be at least 1"),
            ConfigError::ZeroDeadline => write!(f, "default_deadline must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Typed admission rejection from [`JobService::submit`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is saturated; the job was shed (it still gets an id and a
    /// `Shed` row in the status table, so nothing disappears from the
    /// accounting).
    Overloaded {
        id: JobId,
        queue_len: usize,
        queue_cap: usize,
    },
    /// The service is shutting down and admits nothing new.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded {
                id,
                queue_len,
                queue_cap,
            } => write!(
                f,
                "overloaded: job {id} shed (queue {queue_len}/{queue_cap})"
            ),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Aggregate service statistics (monotonic; read any time).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Conservation ledger snapshot.
    pub ledger: Ledger,
    /// Attempt re-executions (arena-path retries + fallback attempts).
    pub retries: u64,
    /// Jobs that ended via the serial-reference fallback.
    pub fallback_completions: u64,
    /// Result-cache lifetime counters (all zero when caching is off).
    pub cache: CacheStats,
    /// Bytes currently held by the result cache.
    pub cache_live_bytes: u64,
    /// Entries currently held by the result cache.
    pub cache_entries: u64,
}

struct JobSlot {
    spec: Option<JobSpec>,
    status: JobStatus,
    priority: Priority,
    deadline: Duration,
    ticket: Option<Ticket>,
    cancel: CancelToken,
    submitted_at: Instant,
    queue_wait: Option<Duration>,
    finished_at: Option<Instant>,
    attempts: u32,
    result: Option<Evd>,
    /// Content key, kept while the job can still interact with the cache
    /// or the in-flight index (cleared at terminal transitions).
    cache_key: Option<CacheKey>,
    /// Followers coalesced onto this job (ids into `jobs`), resolved when
    /// this job reaches a terminal state.
    followers: Vec<JobId>,
}

struct State {
    queue: BoundedQueue<JobId>,
    jobs: Vec<JobSlot>,
    ledger: Ledger,
    retries: u64,
    fallback_completions: u64,
    cache: EvdCache,
    /// Content key → id of the queued/running/coalescing leader for that
    /// key. At most one leader per key exists at any time.
    inflight: HashMap<CacheKey, JobId>,
    shutdown: bool,
}

struct Shared {
    workers: usize,
    max_retries: u32,
    retry_backoff: Duration,
    serial_fallback: bool,
    default_deadline: Duration,
    /// Cache/dedup switches, hoisted out of `State` so `submit` can skip
    /// key derivation (an `O(n²)` hash) without taking the lock.
    cache_enabled: bool,
    dedup: bool,
    verify_hits: bool,
    state: Mutex<State>,
    /// Workers park here when the queue is empty.
    work_cv: Condvar,
    /// Waiters ([`JobService::wait`] / `wait_quiescent`) park here.
    done_cv: Condvar,
}

fn lock_state(shared: &Shared) -> MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Long-running EVD job service. See the module docs for the execution
/// model; construct with [`JobService::start`], stop with
/// [`JobService::shutdown`] (drains the queue) — dropping the handle also
/// shuts down cleanly.
pub struct JobService {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl JobService {
    /// Validates `cfg` and spawns the worker pool. Configuration problems
    /// — including an invalid `TG_THREADS` when `workers == 0` — are
    /// rejected here with a typed [`ConfigError`].
    pub fn start(cfg: ServeConfig) -> Result<JobService, ConfigError> {
        let workers = if cfg.workers == 0 {
            tg_blas::threads::try_worker_threads().map_err(ConfigError::Threads)?
        } else {
            cfg.workers
        };
        if cfg.queue_cap == 0 {
            return Err(ConfigError::ZeroQueueCap);
        }
        if cfg.default_deadline.is_zero() {
            return Err(ConfigError::ZeroDeadline);
        }
        let verify_hits = cfg.verify_hits
            || std::env::var("TG_CACHE_VERIFY").is_ok_and(|v| v == "1" || v == "true");
        let shared = Arc::new(Shared {
            workers,
            max_retries: cfg.max_retries,
            retry_backoff: cfg.retry_backoff,
            serial_fallback: cfg.serial_fallback,
            default_deadline: cfg.default_deadline,
            cache_enabled: cfg.cache_bytes > 0,
            dedup: cfg.dedup,
            verify_hits,
            state: Mutex::new(State {
                queue: BoundedQueue::new(cfg.queue_cap),
                jobs: Vec::new(),
                ledger: Ledger::default(),
                retries: 0,
                fallback_completions: 0,
                cache: EvdCache::new(cfg.cache_bytes),
                inflight: HashMap::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tg-serve-{w}"))
                    .spawn(move || worker_loop(shared, w))
                    .expect("spawn service worker")
            })
            .collect();
        Ok(JobService { shared, handles })
    }

    /// Worker threads actually running.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Admission: cache lookup → in-flight coalescing → enqueue (or shed
    /// with a typed rejection). Never blocks on worker progress — a cache
    /// hit costs the `O(n²)` content hash, a miss additionally a map
    /// probe. (The debug verify knob re-solves on hits; see
    /// [`ServeConfig::verify_hits`].)
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        // Derive the content key *outside* the state lock: hashing the
        // matrix bytes is O(n²) and must not serialize other submitters
        // or the workers. The span covers derivation + the in-lock probe,
        // so `--profile`/`--timeline` show the true cost of admission.
        let lookup_span = (self.shared.cache_enabled || self.shared.dedup)
            .then(|| tg_trace::span_cat("serve.cache.lookup", "stage", None));
        let key = lookup_span
            .as_ref()
            .map(|_| CacheKey::derive(&spec.matrix, &spec.method, spec.want_vectors));

        let mut st = lock_state(&self.shared);
        if st.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        let id = st.jobs.len() as JobId;
        let priority = spec.priority;
        let deadline = spec.deadline.unwrap_or(self.shared.default_deadline);
        let now = Instant::now();

        // 1. Content-addressed cache hit: terminal at admission, no
        //    worker involvement. Sound because stored results come only
        //    from clean attempts and the stack is bitwise-deterministic.
        if self.shared.cache_enabled {
            if let Some(k) = key {
                if let Some(evd) = st.cache.lookup(&k) {
                    let verify = self.shared.verify_hits.then(|| evd.clone());
                    st.jobs.push(JobSlot {
                        spec: None,
                        status: JobStatus::Completed,
                        priority,
                        deadline,
                        ticket: None,
                        cancel: CancelToken::new(),
                        submitted_at: now,
                        queue_wait: None,
                        finished_at: Some(now),
                        attempts: 0,
                        result: Some(evd),
                        cache_key: None,
                        followers: Vec::new(),
                    });
                    st.ledger.on_cache_hit();
                    drop(st);
                    tg_trace::add(tg_trace::Counter::CacheHit, 1);
                    drop(lookup_span);
                    if let Some(expected) = verify {
                        verify_cached_hit(&spec, &expected);
                    }
                    self.shared.done_cv.notify_all();
                    return Ok(id);
                }
            }
        }

        // 2. In-flight coalescing: an identical queued/running job is
        //    already going to compute this exact result — attach as a
        //    follower instead of entering the worker queue. The follower
        //    keeps its own deadline and CancelToken; it is checked
        //    against both when the leader resolves it (and promoted to a
        //    run of its own if the leader fails).
        if self.shared.dedup {
            if let Some(k) = key {
                if let Some(&leader) = st.inflight.get(&k) {
                    debug_assert!(
                        !st.jobs[leader as usize].status.is_terminal(),
                        "in-flight index pointed at a terminal job"
                    );
                    st.jobs.push(JobSlot {
                        spec: Some(spec),
                        status: JobStatus::Coalesced,
                        priority,
                        deadline,
                        ticket: None,
                        cancel: CancelToken::new(),
                        submitted_at: now,
                        queue_wait: None,
                        finished_at: None,
                        attempts: 0,
                        result: None,
                        cache_key: Some(k),
                        followers: Vec::new(),
                    });
                    st.jobs[leader as usize].followers.push(id);
                    st.ledger.on_coalesce_attach();
                    drop(st);
                    tg_trace::add(tg_trace::Counter::JobsCoalesced, 1);
                    return Ok(id);
                }
            }
        }
        if self.shared.cache_enabled {
            // Neither stored nor in flight: a genuine miss (counted even
            // if the queue then sheds it — the lookup really happened).
            tg_trace::add(tg_trace::Counter::CacheMiss, 1);
        }
        drop(lookup_span);

        // 3. Regular admission or shedding.
        match st.queue.admit(priority, id) {
            Ok(ticket) => {
                st.jobs.push(JobSlot {
                    spec: Some(spec),
                    status: JobStatus::Queued,
                    priority,
                    deadline,
                    ticket: Some(ticket),
                    cancel: CancelToken::new(),
                    submitted_at: now,
                    queue_wait: None,
                    finished_at: None,
                    attempts: 0,
                    result: None,
                    cache_key: key,
                    followers: Vec::new(),
                });
                if self.shared.dedup {
                    if let Some(k) = key {
                        st.inflight.insert(k, id);
                    }
                }
                st.ledger.on_admit();
                drop(st);
                self.shared.work_cv.notify_one();
                Ok(id)
            }
            Err(full) => {
                st.jobs.push(JobSlot {
                    spec: None,
                    status: JobStatus::Shed,
                    priority,
                    deadline,
                    ticket: None,
                    cancel: CancelToken::new(),
                    submitted_at: now,
                    queue_wait: None,
                    finished_at: Some(now),
                    attempts: 0,
                    result: None,
                    cache_key: None,
                    followers: Vec::new(),
                });
                st.ledger.on_shed();
                let queue_len = st.queue.len();
                drop(st);
                tg_trace::add(tg_trace::Counter::JobsShed, 1);
                self.shared.done_cv.notify_all();
                Err(SubmitError::Overloaded {
                    id,
                    queue_len,
                    queue_cap: full.cap,
                })
            }
        }
    }

    /// Cancels a job. Queued jobs are removed immediately (terminal
    /// status `cancelled`; any coalesced followers are promoted, never
    /// poisoned); running jobs — and coalesced followers — are cancelled
    /// cooperatively at the next resolution boundary. Returns `false`
    /// when the job was already terminal (or the id unknown).
    pub fn cancel(&self, id: JobId) -> bool {
        let mut st = lock_state(&self.shared);
        let Some(slot) = st.jobs.get(id as usize) else {
            return false;
        };
        match slot.status {
            // A `Queued` slot with no ticket has been popped by a worker
            // that hasn't claimed it yet — fall through to cooperative
            // cancellation in that window.
            JobStatus::Queued if slot.ticket.is_some() => {
                let ticket = slot.ticket.expect("checked above");
                let removed = st.queue.remove(ticket);
                debug_assert_eq!(removed, Some(id));
                st.jobs[id as usize].ticket = None;
                // The queue slot just vacated guarantees room to requeue
                // a promoted follower under this same critical section.
                let promoted = fail_job(
                    &self.shared,
                    st,
                    id,
                    FailReason::Cancelled,
                    PromotionMode::Requeue,
                );
                debug_assert!(promoted.is_none(), "requeue mode never hands back a job");
                true
            }
            JobStatus::Queued | JobStatus::Running | JobStatus::Coalesced => {
                slot.cancel.cancel();
                true
            }
            _ => false,
        }
    }

    /// Blocks until job `id` is terminal and returns its outcome (the
    /// result, if any, is moved out — a repeat `wait` sees `None`).
    ///
    /// # Panics
    /// Panics on an id this service never issued.
    pub fn wait(&self, id: JobId) -> JobOutcome {
        let mut st = lock_state(&self.shared);
        loop {
            let slot = st.jobs.get(id as usize).expect("unknown job id");
            if slot.status.is_terminal() {
                break;
            }
            st = self
                .shared
                .done_cv
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
        let slot = &mut st.jobs[id as usize];
        JobOutcome {
            id,
            status: slot.status.clone(),
            attempts: slot.attempts,
            latency: slot
                .finished_at
                .map(|t| t.duration_since(slot.submitted_at))
                .unwrap_or_default(),
            queue_wait: slot.queue_wait.unwrap_or_default(),
            result: slot.result.take(),
        }
    }

    /// Blocks until every submitted job is terminal, or `timeout` passes.
    /// Returns whether quiescence was reached — the watchdog the fault
    /// campaign uses to prove "no hangs".
    pub fn wait_quiescent(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = lock_state(&self.shared);
        while !st.ledger.quiescent() {
            let now = Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now) else {
                return false;
            };
            let (guard, _timeout) = self
                .shared
                .done_cv
                .wait_timeout(st, remaining)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
        true
    }

    /// Snapshot of the conservation ledger, retry, and cache counters.
    pub fn stats(&self) -> ServiceStats {
        let st = lock_state(&self.shared);
        ServiceStats {
            ledger: st.ledger,
            retries: st.retries,
            fallback_completions: st.fallback_completions,
            cache: st.cache.stats(),
            cache_live_bytes: st.cache.live_bytes(),
            cache_entries: st.cache.entries() as u64,
        }
    }

    /// One row per submitted job (shed included), in id order.
    pub fn status_table(&self) -> Vec<StatusRow> {
        let st = lock_state(&self.shared);
        st.jobs
            .iter()
            .enumerate()
            .map(|(id, slot)| StatusRow {
                id: id as JobId,
                priority: slot.priority,
                status_label: slot.status.label(),
            })
            .collect()
    }

    /// Stops admission, drains the queue, joins the workers, and returns
    /// the final stats.
    pub fn shutdown(mut self) -> ServiceStats {
        self.begin_shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        self.stats()
    }

    fn begin_shutdown(&self) {
        let mut st = lock_state(&self.shared);
        st.shutdown = true;
        drop(st);
        self.shared.work_cv.notify_all();
    }
}

impl Drop for JobService {
    fn drop(&mut self) {
        self.begin_shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

// ---- worker side ----

fn worker_loop(shared: Arc<Shared>, widx: usize) {
    // Mirror the batch scheduler's budget rule: with several service
    // workers the parallelism is spent across jobs, so inner kernels run
    // serial (bitwise-identical to their parallel selves by the PR 5
    // contract). A single worker keeps intra-kernel parallelism.
    let _region_guard = (shared.workers > 1).then(tg_blas::threads::enter_parallel_region);
    let _ = widx;
    // One arena per worker, kept across jobs so same-shape traffic reuses
    // warm buffers (and so the `arena.acquire` fault site sees real cache
    // hits). Failed attempts scrub it; the zeroing contract keeps results
    // bitwise-independent of whatever ran before.
    let mut arena = WorkspaceArena::new();
    loop {
        let claimed = {
            let mut st = lock_state(&shared);
            loop {
                if let Some((_, _, id)) = st.queue.pop() {
                    // The ticket leaves the queue with the pop; clearing it
                    // routes any racing cancel to the cooperative token.
                    st.jobs[id as usize].ticket = None;
                    break Some(id);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        match claimed {
            Some(id) => {
                // A failing leader promotes its first live follower, which
                // this worker then runs directly (it was never queued).
                let mut next = Some(id);
                while let Some(id) = next {
                    next = process_job(&shared, id, &mut arena);
                }
            }
            None => return,
        }
    }
}

/// What one attempt can report back.
enum AttemptError {
    /// An armed fault fired on this thread during the attempt.
    FaultInjected { fired: u64 },
    /// The result contained NaN/Inf.
    NonFinite,
    /// The solver returned an error.
    Eigen(tg_eigen::EigenError),
    /// The attempt panicked (caught; the worker survives).
    Panicked(String),
}

impl std::fmt::Display for AttemptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttemptError::FaultInjected { fired } => {
                write!(f, "{fired} injected fault(s) fired during the attempt")
            }
            AttemptError::NonFinite => write!(f, "result contained non-finite values"),
            AttemptError::Eigen(e) => write!(f, "solver error: {e}"),
            AttemptError::Panicked(msg) => write!(f, "attempt panicked: {msg}"),
        }
    }
}

fn evd_is_finite(evd: &Evd) -> bool {
    evd.eigenvalues.iter().all(|x| x.is_finite())
        && evd
            .eigenvectors
            .as_ref()
            .is_none_or(|v| v.as_slice().iter().all(|x| x.is_finite()))
}

/// Classifies the outcome of one guarded solve: panics are caught, a
/// fired fault or non-finite output invalidates an otherwise "successful"
/// result.
fn classify<F>(solve: F) -> Result<Evd, AttemptError>
where
    F: FnOnce() -> Result<Evd, tg_eigen::EigenError>,
{
    let fired_before = tg_check::fault::fired_on_this_thread();
    let outcome = catch_unwind(AssertUnwindSafe(solve));
    let fired = tg_check::fault::fired_on_this_thread() - fired_before;
    match outcome {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(AttemptError::Panicked(msg))
        }
        Ok(Err(e)) => Err(AttemptError::Eigen(e)),
        Ok(Ok(evd)) => {
            if fired > 0 {
                Err(AttemptError::FaultInjected { fired })
            } else if !evd_is_finite(&evd) {
                Err(AttemptError::NonFinite)
            } else {
                Ok(evd)
            }
        }
    }
}

/// Runs one job to a terminal state. Returns the id of a follower
/// promoted by a failing leader, which the calling worker must run next
/// (promoted followers are never in the queue).
fn process_job(shared: &Shared, id: JobId, arena: &mut WorkspaceArena) -> Option<JobId> {
    // Claim the slot: record queue wait, honour cancel/deadline that
    // arrived while queued, and pull what the attempts need.
    let (spec, cancel, submitted_at, deadline) = {
        let mut st = lock_state(shared);
        let now = Instant::now();
        let slot = &mut st.jobs[id as usize];
        let wait = now.duration_since(slot.submitted_at);
        slot.queue_wait = Some(wait);
        tg_trace::record_span(
            "serve.wait",
            "wait",
            Some(("job", id)),
            slot.submitted_at,
            now,
            None,
        );
        if slot.cancel.is_cancelled() {
            return fail_job(
                shared,
                st,
                id,
                FailReason::Cancelled,
                PromotionMode::RunNext,
            );
        }
        if now.duration_since(slot.submitted_at) > slot.deadline {
            return fail_job(
                shared,
                st,
                id,
                FailReason::DeadlineExceeded,
                PromotionMode::RunNext,
            );
        }
        slot.status = JobStatus::Running;
        let spec = slot.spec.clone().expect("running job keeps its spec");
        (spec, slot.cancel.clone(), slot.submitted_at, slot.deadline)
    };

    let region = tg_trace::RegionId::fresh();
    let _task = tg_trace::span_region("serve.job", "task", Some(("job", id)), region);
    let hard_deadline = submitted_at + deadline;
    let n = spec.matrix.nrows();
    let class = ShapeClass::for_evd(n, &spec.method);

    let mut attempts: u32 = 0;
    let mut last_error: Option<AttemptError> = None;

    // Leased-arena attempts: 1 + max_retries.
    while attempts < 1 + shared.max_retries {
        if cancel.is_cancelled() {
            return fail_job(
                shared,
                lock_state(shared),
                id,
                FailReason::Cancelled,
                PromotionMode::RunNext,
            );
        }
        if Instant::now() > hard_deadline {
            return fail_job(
                shared,
                lock_state(shared),
                id,
                FailReason::DeadlineExceeded,
                PromotionMode::RunNext,
            );
        }
        if attempts > 0 {
            count_retry(shared);
            if !backoff(shared, attempts - 1, hard_deadline) {
                return fail_job(
                    shared,
                    lock_state(shared),
                    id,
                    FailReason::DeadlineExceeded,
                    PromotionMode::RunNext,
                );
            }
        }
        attempts += 1;
        let outcome = {
            let _span =
                tg_trace::span_cat("serve.attempt", "stage", Some(("attempt", attempts as u64)));
            classify(|| {
                let mut lease = arena.lease(class);
                let mut a = spec.matrix.clone();
                tg_eigen::syevd_ws(&mut a, &spec.method, spec.want_vectors, &mut *lease)
            })
        };
        match outcome {
            Ok(evd) => return finish_completed(shared, id, attempts, evd, false),
            Err(e) => {
                // Nothing the failed attempt touched may survive into the
                // next one: drop the cached (possibly fault-corrupted)
                // buffers. The lease guard already repaired the live-byte
                // accounting if the attempt unwound mid-flight. (And
                // nothing reaches the result cache from here — only
                // `finish_completed`, i.e. a clean attempt, inserts.)
                arena.scrub();
                last_error = Some(e);
            }
        }
    }

    // Serial reference fallback: the direct path, fresh allocations.
    if shared.serial_fallback {
        if cancel.is_cancelled() {
            return fail_job(
                shared,
                lock_state(shared),
                id,
                FailReason::Cancelled,
                PromotionMode::RunNext,
            );
        }
        if Instant::now() > hard_deadline {
            return fail_job(
                shared,
                lock_state(shared),
                id,
                FailReason::DeadlineExceeded,
                PromotionMode::RunNext,
            );
        }
        count_retry(shared);
        if !backoff(shared, shared.max_retries, hard_deadline) {
            return fail_job(
                shared,
                lock_state(shared),
                id,
                FailReason::DeadlineExceeded,
                PromotionMode::RunNext,
            );
        }
        attempts += 1;
        let outcome = {
            let _span = tg_trace::span_cat("serve.fallback", "stage", Some(("job", id)));
            classify(|| {
                let mut a = spec.matrix.clone();
                syevd(&mut a, &spec.method, spec.want_vectors)
            })
        };
        match outcome {
            Ok(evd) => return finish_completed(shared, id, attempts, evd, true),
            Err(e) => last_error = Some(e),
        }
    }

    let last = last_error.map(|e| e.to_string()).unwrap_or_default();
    fail_job(
        shared,
        lock_state(shared),
        id,
        FailReason::Exhausted {
            attempts,
            last_error: last,
        },
        PromotionMode::RunNext,
    )
}

/// Debug-mode hit validation ([`ServeConfig::verify_hits`] /
/// `TG_CACHE_VERIFY=1`): re-solve the submission through the direct
/// reference path and panic unless the cached result is **bitwise**
/// identical — the exact property that makes content-addressed caching
/// sound. Runs outside the state lock (it is a full solve).
fn verify_cached_hit(spec: &JobSpec, expected: &Evd) {
    let mut a = spec.matrix.clone();
    let fresh = syevd(&mut a, &spec.method, spec.want_vectors)
        .expect("verify_hits: reference re-solve failed on a cached input");
    let values_match = fresh.eigenvalues.len() == expected.eigenvalues.len()
        && fresh
            .eigenvalues
            .iter()
            .zip(expected.eigenvalues.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
    let vectors_match = match (&fresh.eigenvectors, &expected.eigenvectors) {
        (None, None) => true,
        (Some(f), Some(e)) => {
            f.nrows() == e.nrows()
                && f.ncols() == e.ncols()
                && f.as_slice()
                    .iter()
                    .zip(e.as_slice().iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits())
        }
        _ => false,
    };
    assert!(
        values_match && vectors_match,
        "TG_CACHE_VERIFY: cached EVD is not bitwise-identical to a fresh \
         reference solve (n={}, values_match={values_match}, \
         vectors_match={vectors_match}) — the determinism contract the \
         cache relies on is broken",
        spec.matrix.nrows()
    );
}

fn count_retry(shared: &Shared) {
    tg_trace::add(tg_trace::Counter::JobsRetried, 1);
    let mut st = lock_state(shared);
    st.retries += 1;
}

/// Deterministic exponential backoff (`base · 2^k`), clipped to the
/// deadline budget. Returns `false` when no budget remains.
fn backoff(shared: &Shared, k: u32, hard_deadline: Instant) -> bool {
    let pause = shared
        .retry_backoff
        .checked_mul(1u32 << k.min(16))
        .unwrap_or(shared.retry_backoff);
    if pause.is_zero() {
        return true;
    }
    let Some(budget) = hard_deadline.checked_duration_since(Instant::now()) else {
        return false;
    };
    std::thread::sleep(pause.min(budget));
    true
}

/// A worker produced a clean result for job `id`: complete it, hand
/// clones to every live follower, and — this being the only path a result
/// can take into the cache — insert it. `classify` already guaranteed the
/// attempt was clean (no fired fault, finite, no error, no panic), so
/// nothing mid-retry can ever be stored; fallback results are cacheable
/// because the serial reference path is bitwise-identical by contract.
/// Returns `None` (completion never promotes anything).
fn finish_completed(
    shared: &Shared,
    id: JobId,
    attempts: u32,
    evd: Evd,
    via_fallback: bool,
) -> Option<JobId> {
    let mut st = lock_state(shared);
    let now = Instant::now();
    let (key, followers) = {
        let slot = &mut st.jobs[id as usize];
        slot.status = JobStatus::Completed;
        slot.attempts = attempts;
        slot.finished_at = Some(now);
        slot.spec = None;
        (slot.cache_key.take(), std::mem::take(&mut slot.followers))
    };
    st.ledger.on_complete();
    if via_fallback {
        st.fallback_completions += 1;
    }
    // Followers ride the same clean result — each still honours its own
    // cancellation and deadline at this resolution point.
    for f in followers {
        let fslot = &mut st.jobs[f as usize];
        debug_assert_eq!(fslot.status, JobStatus::Coalesced);
        fslot.finished_at = Some(now);
        fslot.spec = None;
        if fslot.cancel.is_cancelled() {
            fslot.status = JobStatus::Failed(FailReason::Cancelled);
            st.ledger.on_fail();
        } else if now.duration_since(fslot.submitted_at) > fslot.deadline {
            fslot.status = JobStatus::Failed(FailReason::DeadlineExceeded);
            st.ledger.on_fail();
        } else {
            fslot.status = JobStatus::Completed;
            fslot.result = Some(evd.clone());
            st.ledger.on_coalesce_complete();
        }
    }
    if let Some(k) = key {
        if st.inflight.get(&k) == Some(&id) {
            st.inflight.remove(&k);
        }
        if st.cache.enabled() {
            let evicted = st.cache.insert(k, &evd);
            if evicted > 0 {
                tg_trace::add(tg_trace::Counter::CacheEvictedBytes, evicted);
            }
        }
    }
    st.jobs[id as usize].result = Some(evd);
    drop(st);
    shared.done_cv.notify_all();
    None
}

/// How [`fail_job`] hands a promoted follower onward.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PromotionMode {
    /// Caller is a worker: return the promoted follower's id so the
    /// worker runs it directly (it was never queued).
    RunNext,
    /// Caller holds no worker thread (the queued-cancel path): re-admit
    /// the promoted follower into the queue slot the leader just vacated.
    Requeue,
}

/// Fails job `id` with `reason` and triages its followers: followers
/// whose own cancel/deadline already expired fail with *their* reason,
/// and the first live follower is promoted to take over the content key
/// (leader failure never poisons followers). Returns the promoted id in
/// [`PromotionMode::RunNext`].
fn fail_job(
    shared: &Shared,
    mut st: MutexGuard<'_, State>,
    id: JobId,
    reason: FailReason,
    mode: PromotionMode,
) -> Option<JobId> {
    let now = Instant::now();
    let (key, followers) = {
        let slot = &mut st.jobs[id as usize];
        slot.status = JobStatus::Failed(reason);
        slot.finished_at = Some(now);
        slot.spec = None;
        (slot.cache_key.take(), std::mem::take(&mut slot.followers))
    };
    st.ledger.on_fail();
    if let Some(k) = key {
        if st.inflight.get(&k) == Some(&id) {
            st.inflight.remove(&k);
        }
    }
    let mut promoted: Option<JobId> = None;
    let mut rest: Vec<JobId> = Vec::new();
    for f in followers {
        let fslot = &mut st.jobs[f as usize];
        debug_assert_eq!(fslot.status, JobStatus::Coalesced);
        if fslot.cancel.is_cancelled() {
            fslot.status = JobStatus::Failed(FailReason::Cancelled);
            fslot.finished_at = Some(now);
            fslot.spec = None;
            st.ledger.on_fail();
        } else if now.duration_since(fslot.submitted_at) > fslot.deadline {
            fslot.status = JobStatus::Failed(FailReason::DeadlineExceeded);
            fslot.finished_at = Some(now);
            fslot.spec = None;
            st.ledger.on_fail();
        } else if promoted.is_none() {
            promoted = Some(f);
        } else {
            rest.push(f);
        }
    }
    if let Some(p) = promoted {
        st.jobs[p as usize].followers = rest;
        if let Some(k) = key {
            st.inflight.insert(k, p);
        }
        match mode {
            PromotionMode::RunNext => {
                drop(st);
                shared.done_cv.notify_all();
                return Some(p);
            }
            PromotionMode::Requeue => {
                let priority = st.jobs[p as usize].priority;
                let ticket = st
                    .queue
                    .admit(priority, p)
                    .expect("the failed leader's queue slot was vacated under this lock");
                let pslot = &mut st.jobs[p as usize];
                pslot.ticket = Some(ticket);
                pslot.status = JobStatus::Queued;
                drop(st);
                shared.work_cv.notify_one();
                shared.done_cv.notify_all();
                return None;
            }
        }
    }
    drop(st);
    shared.done_cv.notify_all();
    None
}
