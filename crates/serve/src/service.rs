//! The job service: worker pool, admission, deadlines, retries, fallback,
//! and load shedding around the batched-EVD machinery.
//!
//! # Execution model
//!
//! [`JobService::start`] validates its config (rejecting bad `TG_THREADS`
//! at startup with a typed error — never mid-request) and spawns a fixed
//! worker pool. [`submit`](JobService::submit) either admits a job into
//! the bounded priority queue or *sheds* it with a typed
//! [`SubmitError::Overloaded`] — admission never blocks, which is what
//! keeps an open-loop overload survivable. Workers pull jobs in priority
//! order (FIFO within a class) and run each through the same
//! `syevd_ws`-on-a-leased-arena path the batch scheduler uses.
//!
//! # Failure handling
//!
//! An attempt is classified *transient* when (a) an armed `tg-check` fault
//! fired on the worker thread during the attempt (the machine-check-style
//! signal — see [`tg_check::fault::fired_on_this_thread`]), (b) the result
//! contains non-finite values, (c) the solver returned an error, or (d)
//! the attempt panicked. Transient failures are retried with deterministic
//! exponential backoff after scrubbing the worker's arena (so a poisoned
//! buffer cannot leak into the retry — the lease guard already repaired
//! the accounting if the attempt unwound). When the leased-arena attempts
//! are exhausted the job falls back to the serial reference path (plain
//! [`tg_eigen::syevd`] on a fresh allocation pool); only if that also
//! fails does the job end as [`FailReason::Exhausted`].
//!
//! # Determinism contract
//!
//! A completed job's result is **bitwise-identical** to calling
//! [`tg_eigen::syevd`] directly on the same input: the arena path carries
//! the PR 2 workspace contract, the fallback *is* the direct path, and a
//! retry recomputes from the pristine input matrix. Admission order,
//! worker count, shedding, and retries decide *whether and when* a job
//! completes — never what its result contains.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tg_batch::{CancelToken, ShapeClass, WorkspaceArena};
use tg_blas::threads::ThreadsConfigError;
use tg_eigen::{syevd, Evd};

use crate::job::{FailReason, JobId, JobOutcome, JobSpec, JobStatus, StatusRow};
use crate::queue::{BoundedQueue, Ledger, Priority, Ticket};

/// Service configuration. `Default` gives a production-shaped setup;
/// tests tighten the knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads. `0` = resolve from `TG_THREADS`/auto via the
    /// *strict* [`tg_blas::threads::try_worker_threads`] — an invalid
    /// override fails startup instead of silently running misconfigured.
    pub workers: usize,
    /// Bound on queued (admitted, not yet running) jobs — the load-
    /// shedding threshold.
    pub queue_cap: usize,
    /// Deadline for jobs that don't carry their own.
    pub default_deadline: Duration,
    /// Transient-failure retries per job on the leased-arena path (the
    /// job's first attempt is not a retry).
    pub max_retries: u32,
    /// Base backoff before retry `k` sleeps `base · 2^k`, clipped to the
    /// job's remaining deadline budget.
    pub retry_backoff: Duration,
    /// After exhausting retries, make one final attempt through the
    /// serial reference path (plain `syevd`, fresh allocations).
    pub serial_fallback: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            queue_cap: 64,
            default_deadline: Duration::from_secs(30),
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            serial_fallback: true,
        }
    }
}

/// Startup-time configuration rejection. The service refuses to boot on
/// any of these; nothing is ever "fixed up" silently.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `TG_THREADS` was set but invalid (zero / non-numeric).
    Threads(ThreadsConfigError),
    /// `queue_cap == 0` would shed every submission.
    ZeroQueueCap,
    /// A zero default deadline would expire every job at admission.
    ZeroDeadline,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Threads(e) => write!(f, "worker-thread config rejected: {e}"),
            ConfigError::ZeroQueueCap => write!(f, "queue_cap must be at least 1"),
            ConfigError::ZeroDeadline => write!(f, "default_deadline must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Typed admission rejection from [`JobService::submit`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is saturated; the job was shed (it still gets an id and a
    /// `Shed` row in the status table, so nothing disappears from the
    /// accounting).
    Overloaded {
        id: JobId,
        queue_len: usize,
        queue_cap: usize,
    },
    /// The service is shutting down and admits nothing new.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded {
                id,
                queue_len,
                queue_cap,
            } => write!(
                f,
                "overloaded: job {id} shed (queue {queue_len}/{queue_cap})"
            ),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Aggregate service statistics (monotonic; read any time).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Conservation ledger snapshot.
    pub ledger: Ledger,
    /// Attempt re-executions (arena-path retries + fallback attempts).
    pub retries: u64,
    /// Jobs that ended via the serial-reference fallback.
    pub fallback_completions: u64,
}

struct JobSlot {
    spec: Option<JobSpec>,
    status: JobStatus,
    priority: Priority,
    deadline: Duration,
    ticket: Option<Ticket>,
    cancel: CancelToken,
    submitted_at: Instant,
    queue_wait: Option<Duration>,
    finished_at: Option<Instant>,
    attempts: u32,
    result: Option<Evd>,
}

struct State {
    queue: BoundedQueue<JobId>,
    jobs: Vec<JobSlot>,
    ledger: Ledger,
    retries: u64,
    fallback_completions: u64,
    shutdown: bool,
}

struct Shared {
    workers: usize,
    max_retries: u32,
    retry_backoff: Duration,
    serial_fallback: bool,
    default_deadline: Duration,
    state: Mutex<State>,
    /// Workers park here when the queue is empty.
    work_cv: Condvar,
    /// Waiters ([`JobService::wait`] / `wait_quiescent`) park here.
    done_cv: Condvar,
}

fn lock_state(shared: &Shared) -> MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Long-running EVD job service. See the module docs for the execution
/// model; construct with [`JobService::start`], stop with
/// [`JobService::shutdown`] (drains the queue) — dropping the handle also
/// shuts down cleanly.
pub struct JobService {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl JobService {
    /// Validates `cfg` and spawns the worker pool. Configuration problems
    /// — including an invalid `TG_THREADS` when `workers == 0` — are
    /// rejected here with a typed [`ConfigError`].
    pub fn start(cfg: ServeConfig) -> Result<JobService, ConfigError> {
        let workers = if cfg.workers == 0 {
            tg_blas::threads::try_worker_threads().map_err(ConfigError::Threads)?
        } else {
            cfg.workers
        };
        if cfg.queue_cap == 0 {
            return Err(ConfigError::ZeroQueueCap);
        }
        if cfg.default_deadline.is_zero() {
            return Err(ConfigError::ZeroDeadline);
        }
        let shared = Arc::new(Shared {
            workers,
            max_retries: cfg.max_retries,
            retry_backoff: cfg.retry_backoff,
            serial_fallback: cfg.serial_fallback,
            default_deadline: cfg.default_deadline,
            state: Mutex::new(State {
                queue: BoundedQueue::new(cfg.queue_cap),
                jobs: Vec::new(),
                ledger: Ledger::default(),
                retries: 0,
                fallback_completions: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tg-serve-{w}"))
                    .spawn(move || worker_loop(shared, w))
                    .expect("spawn service worker")
            })
            .collect();
        Ok(JobService { shared, handles })
    }

    /// Worker threads actually running.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Admits `spec` or sheds it with a typed rejection. Never blocks.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        let mut st = lock_state(&self.shared);
        if st.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        let id = st.jobs.len() as JobId;
        let priority = spec.priority;
        let deadline = spec.deadline.unwrap_or(self.shared.default_deadline);
        let now = Instant::now();
        match st.queue.admit(priority, id) {
            Ok(ticket) => {
                st.jobs.push(JobSlot {
                    spec: Some(spec),
                    status: JobStatus::Queued,
                    priority,
                    deadline,
                    ticket: Some(ticket),
                    cancel: CancelToken::new(),
                    submitted_at: now,
                    queue_wait: None,
                    finished_at: None,
                    attempts: 0,
                    result: None,
                });
                st.ledger.on_admit();
                drop(st);
                self.shared.work_cv.notify_one();
                Ok(id)
            }
            Err(full) => {
                st.jobs.push(JobSlot {
                    spec: None,
                    status: JobStatus::Shed,
                    priority,
                    deadline,
                    ticket: None,
                    cancel: CancelToken::new(),
                    submitted_at: now,
                    queue_wait: None,
                    finished_at: Some(now),
                    attempts: 0,
                    result: None,
                });
                st.ledger.on_shed();
                let queue_len = st.queue.len();
                drop(st);
                tg_trace::add(tg_trace::Counter::JobsShed, 1);
                self.shared.done_cv.notify_all();
                Err(SubmitError::Overloaded {
                    id,
                    queue_len,
                    queue_cap: full.cap,
                })
            }
        }
    }

    /// Cancels a job. Queued jobs are removed immediately (terminal
    /// status `cancelled`); running jobs are cancelled cooperatively at
    /// their next retry boundary. Returns `false` when the job was
    /// already terminal (or the id unknown).
    pub fn cancel(&self, id: JobId) -> bool {
        let mut st = lock_state(&self.shared);
        let Some(slot) = st.jobs.get(id as usize) else {
            return false;
        };
        match slot.status {
            // A `Queued` slot with no ticket has been popped by a worker
            // that hasn't claimed it yet — fall through to cooperative
            // cancellation in that window.
            JobStatus::Queued if slot.ticket.is_some() => {
                let ticket = slot.ticket.expect("checked above");
                let removed = st.queue.remove(ticket);
                debug_assert_eq!(removed, Some(id));
                let now = Instant::now();
                let slot = &mut st.jobs[id as usize];
                slot.status = JobStatus::Failed(FailReason::Cancelled);
                slot.finished_at = Some(now);
                slot.ticket = None;
                slot.spec = None;
                st.ledger.on_fail();
                drop(st);
                self.shared.done_cv.notify_all();
                true
            }
            JobStatus::Queued | JobStatus::Running => {
                slot.cancel.cancel();
                true
            }
            _ => false,
        }
    }

    /// Blocks until job `id` is terminal and returns its outcome (the
    /// result, if any, is moved out — a repeat `wait` sees `None`).
    ///
    /// # Panics
    /// Panics on an id this service never issued.
    pub fn wait(&self, id: JobId) -> JobOutcome {
        let mut st = lock_state(&self.shared);
        loop {
            let slot = st.jobs.get(id as usize).expect("unknown job id");
            if slot.status.is_terminal() {
                break;
            }
            st = self
                .shared
                .done_cv
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
        let slot = &mut st.jobs[id as usize];
        JobOutcome {
            id,
            status: slot.status.clone(),
            attempts: slot.attempts,
            latency: slot
                .finished_at
                .map(|t| t.duration_since(slot.submitted_at))
                .unwrap_or_default(),
            queue_wait: slot.queue_wait.unwrap_or_default(),
            result: slot.result.take(),
        }
    }

    /// Blocks until every submitted job is terminal, or `timeout` passes.
    /// Returns whether quiescence was reached — the watchdog the fault
    /// campaign uses to prove "no hangs".
    pub fn wait_quiescent(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = lock_state(&self.shared);
        while !st.ledger.quiescent() {
            let now = Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now) else {
                return false;
            };
            let (guard, _timeout) = self
                .shared
                .done_cv
                .wait_timeout(st, remaining)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
        true
    }

    /// Snapshot of the conservation ledger and retry counters.
    pub fn stats(&self) -> ServiceStats {
        let st = lock_state(&self.shared);
        ServiceStats {
            ledger: st.ledger,
            retries: st.retries,
            fallback_completions: st.fallback_completions,
        }
    }

    /// One row per submitted job (shed included), in id order.
    pub fn status_table(&self) -> Vec<StatusRow> {
        let st = lock_state(&self.shared);
        st.jobs
            .iter()
            .enumerate()
            .map(|(id, slot)| StatusRow {
                id: id as JobId,
                priority: slot.priority,
                status_label: slot.status.label(),
            })
            .collect()
    }

    /// Stops admission, drains the queue, joins the workers, and returns
    /// the final stats.
    pub fn shutdown(mut self) -> ServiceStats {
        self.begin_shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        self.stats()
    }

    fn begin_shutdown(&self) {
        let mut st = lock_state(&self.shared);
        st.shutdown = true;
        drop(st);
        self.shared.work_cv.notify_all();
    }
}

impl Drop for JobService {
    fn drop(&mut self) {
        self.begin_shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

// ---- worker side ----

fn worker_loop(shared: Arc<Shared>, widx: usize) {
    // Mirror the batch scheduler's budget rule: with several service
    // workers the parallelism is spent across jobs, so inner kernels run
    // serial (bitwise-identical to their parallel selves by the PR 5
    // contract). A single worker keeps intra-kernel parallelism.
    let _region_guard = (shared.workers > 1).then(tg_blas::threads::enter_parallel_region);
    let _ = widx;
    // One arena per worker, kept across jobs so same-shape traffic reuses
    // warm buffers (and so the `arena.acquire` fault site sees real cache
    // hits). Failed attempts scrub it; the zeroing contract keeps results
    // bitwise-independent of whatever ran before.
    let mut arena = WorkspaceArena::new();
    loop {
        let claimed = {
            let mut st = lock_state(&shared);
            loop {
                if let Some((_, _, id)) = st.queue.pop() {
                    // The ticket leaves the queue with the pop; clearing it
                    // routes any racing cancel to the cooperative token.
                    st.jobs[id as usize].ticket = None;
                    break Some(id);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        match claimed {
            Some(id) => process_job(&shared, id, &mut arena),
            None => return,
        }
    }
}

/// What one attempt can report back.
enum AttemptError {
    /// An armed fault fired on this thread during the attempt.
    FaultInjected { fired: u64 },
    /// The result contained NaN/Inf.
    NonFinite,
    /// The solver returned an error.
    Eigen(tg_eigen::EigenError),
    /// The attempt panicked (caught; the worker survives).
    Panicked(String),
}

impl std::fmt::Display for AttemptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttemptError::FaultInjected { fired } => {
                write!(f, "{fired} injected fault(s) fired during the attempt")
            }
            AttemptError::NonFinite => write!(f, "result contained non-finite values"),
            AttemptError::Eigen(e) => write!(f, "solver error: {e}"),
            AttemptError::Panicked(msg) => write!(f, "attempt panicked: {msg}"),
        }
    }
}

fn evd_is_finite(evd: &Evd) -> bool {
    evd.eigenvalues.iter().all(|x| x.is_finite())
        && evd
            .eigenvectors
            .as_ref()
            .is_none_or(|v| v.as_slice().iter().all(|x| x.is_finite()))
}

/// Classifies the outcome of one guarded solve: panics are caught, a
/// fired fault or non-finite output invalidates an otherwise "successful"
/// result.
fn classify<F>(solve: F) -> Result<Evd, AttemptError>
where
    F: FnOnce() -> Result<Evd, tg_eigen::EigenError>,
{
    let fired_before = tg_check::fault::fired_on_this_thread();
    let outcome = catch_unwind(AssertUnwindSafe(solve));
    let fired = tg_check::fault::fired_on_this_thread() - fired_before;
    match outcome {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(AttemptError::Panicked(msg))
        }
        Ok(Err(e)) => Err(AttemptError::Eigen(e)),
        Ok(Ok(evd)) => {
            if fired > 0 {
                Err(AttemptError::FaultInjected { fired })
            } else if !evd_is_finite(&evd) {
                Err(AttemptError::NonFinite)
            } else {
                Ok(evd)
            }
        }
    }
}

fn process_job(shared: &Shared, id: JobId, arena: &mut WorkspaceArena) {
    // Claim the slot: record queue wait, honour cancel/deadline that
    // arrived while queued, and pull what the attempts need.
    let (spec, cancel, submitted_at, deadline) = {
        let mut st = lock_state(shared);
        let now = Instant::now();
        let slot = &mut st.jobs[id as usize];
        let wait = now.duration_since(slot.submitted_at);
        slot.queue_wait = Some(wait);
        tg_trace::record_span(
            "serve.wait",
            "wait",
            Some(("job", id)),
            slot.submitted_at,
            now,
            None,
        );
        if slot.cancel.is_cancelled() {
            return finish_failed(shared, st, id, FailReason::Cancelled);
        }
        if now.duration_since(slot.submitted_at) > slot.deadline {
            return finish_failed(shared, st, id, FailReason::DeadlineExceeded);
        }
        slot.status = JobStatus::Running;
        let spec = slot.spec.clone().expect("running job keeps its spec");
        (spec, slot.cancel.clone(), slot.submitted_at, slot.deadline)
    };

    let region = tg_trace::RegionId::fresh();
    let _task = tg_trace::span_region("serve.job", "task", Some(("job", id)), region);
    let hard_deadline = submitted_at + deadline;
    let n = spec.matrix.nrows();
    let class = ShapeClass::for_evd(n, &spec.method);

    let mut attempts: u32 = 0;
    let mut last_error: Option<AttemptError> = None;

    // Leased-arena attempts: 1 + max_retries.
    while attempts < 1 + shared.max_retries {
        if cancel.is_cancelled() {
            return finish_failed(shared, lock_state(shared), id, FailReason::Cancelled);
        }
        if Instant::now() > hard_deadline {
            return finish_failed(shared, lock_state(shared), id, FailReason::DeadlineExceeded);
        }
        if attempts > 0 {
            count_retry(shared);
            if !backoff(shared, attempts - 1, hard_deadline) {
                return finish_failed(shared, lock_state(shared), id, FailReason::DeadlineExceeded);
            }
        }
        attempts += 1;
        let outcome = {
            let _span =
                tg_trace::span_cat("serve.attempt", "stage", Some(("attempt", attempts as u64)));
            classify(|| {
                let mut lease = arena.lease(class);
                let mut a = spec.matrix.clone();
                tg_eigen::syevd_ws(&mut a, &spec.method, spec.want_vectors, &mut *lease)
            })
        };
        match outcome {
            Ok(evd) => return finish_completed(shared, id, attempts, evd, false),
            Err(e) => {
                // Nothing the failed attempt touched may survive into the
                // next one: drop the cached (possibly fault-corrupted)
                // buffers. The lease guard already repaired the live-byte
                // accounting if the attempt unwound mid-flight.
                arena.scrub();
                last_error = Some(e);
            }
        }
    }

    // Serial reference fallback: the direct path, fresh allocations.
    if shared.serial_fallback {
        if cancel.is_cancelled() {
            return finish_failed(shared, lock_state(shared), id, FailReason::Cancelled);
        }
        if Instant::now() > hard_deadline {
            return finish_failed(shared, lock_state(shared), id, FailReason::DeadlineExceeded);
        }
        count_retry(shared);
        if !backoff(shared, shared.max_retries, hard_deadline) {
            return finish_failed(shared, lock_state(shared), id, FailReason::DeadlineExceeded);
        }
        attempts += 1;
        let outcome = {
            let _span = tg_trace::span_cat("serve.fallback", "stage", Some(("job", id)));
            classify(|| {
                let mut a = spec.matrix.clone();
                syevd(&mut a, &spec.method, spec.want_vectors)
            })
        };
        match outcome {
            Ok(evd) => return finish_completed(shared, id, attempts, evd, true),
            Err(e) => last_error = Some(e),
        }
    }

    let last = last_error.map(|e| e.to_string()).unwrap_or_default();
    finish_failed(
        shared,
        lock_state(shared),
        id,
        FailReason::Exhausted {
            attempts,
            last_error: last,
        },
    );
}

fn count_retry(shared: &Shared) {
    tg_trace::add(tg_trace::Counter::JobsRetried, 1);
    let mut st = lock_state(shared);
    st.retries += 1;
}

/// Deterministic exponential backoff (`base · 2^k`), clipped to the
/// deadline budget. Returns `false` when no budget remains.
fn backoff(shared: &Shared, k: u32, hard_deadline: Instant) -> bool {
    let pause = shared
        .retry_backoff
        .checked_mul(1u32 << k.min(16))
        .unwrap_or(shared.retry_backoff);
    if pause.is_zero() {
        return true;
    }
    let Some(budget) = hard_deadline.checked_duration_since(Instant::now()) else {
        return false;
    };
    std::thread::sleep(pause.min(budget));
    true
}

fn finish_completed(shared: &Shared, id: JobId, attempts: u32, evd: Evd, via_fallback: bool) {
    let mut st = lock_state(shared);
    let slot = &mut st.jobs[id as usize];
    slot.status = JobStatus::Completed;
    slot.attempts = attempts;
    slot.result = Some(evd);
    slot.finished_at = Some(Instant::now());
    slot.spec = None;
    st.ledger.on_complete();
    if via_fallback {
        st.fallback_completions += 1;
    }
    drop(st);
    shared.done_cv.notify_all();
}

fn finish_failed(shared: &Shared, mut st: MutexGuard<'_, State>, id: JobId, reason: FailReason) {
    let slot = &mut st.jobs[id as usize];
    slot.status = JobStatus::Failed(reason);
    slot.finished_at = Some(Instant::now());
    slot.spec = None;
    st.ledger.on_fail();
    drop(st);
    shared.done_cv.notify_all();
}
