//! Bounded priority job queue — the pure, single-threaded core under the
//! service's mutex.
//!
//! This type is deliberately free of locks, clocks, and I/O so the
//! property battery in `tests/queue_properties.rs` can drive arbitrary
//! admit/pop/remove interleavings against it and check the structural
//! invariants directly:
//!
//! * admission is all-or-nothing: a full queue rejects ([`QueueFull`]),
//!   it never partially accepts or silently drops;
//! * every admitted entry is handed out exactly once (by [`pop`] or
//!   [`remove`]) — nothing is lost, nothing is duplicated;
//! * [`pop`] serves the highest priority class first and is FIFO *within*
//!   a class (admission order, by ticket).
//!
//! Accounting across the whole service (submitted = completed + failed +
//! shed + still-pending) lives in [`Ledger`], kept next to the queue so
//! the conservation law is checkable at any instant.

use std::collections::VecDeque;

/// Admission priority class. Lower discriminant = served first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive traffic; always drained before the other classes.
    High = 0,
    /// Default class.
    Normal = 1,
    /// Backfill; only served when nothing else is queued.
    Low = 2,
}

impl Priority {
    /// All classes, in service order.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    fn index(self) -> usize {
        self as usize
    }
}

/// Typed rejection from [`BoundedQueue::admit`]: the queue is at capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull {
    /// Configured capacity the admission ran into.
    pub cap: usize,
}

/// A monotonically increasing admission ticket. Tickets order entries
/// within a priority class (FIFO) and identify an entry for [`remove`].
///
/// [`remove`]: BoundedQueue::remove
pub type Ticket = u64;

struct Entry<T> {
    ticket: Ticket,
    item: T,
}

/// Bounded multi-class FIFO. `cap` bounds the *total* queued entries
/// across all classes — that is the load-shedding threshold.
pub struct BoundedQueue<T> {
    cap: usize,
    next_ticket: Ticket,
    classes: [VecDeque<Entry<T>>; 3],
}

impl<T> BoundedQueue<T> {
    /// An empty queue with total capacity `cap` (≥ 1 enforced by the
    /// service config; 0 is allowed here and simply rejects everything).
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            cap,
            next_ticket: 0,
            classes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
        }
    }

    /// Total queued entries across all classes.
    pub fn len(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.classes.iter().all(VecDeque::is_empty)
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Admits `item` into `priority`'s FIFO, or rejects with [`QueueFull`]
    /// when the queue is saturated. On success returns the admission
    /// ticket.
    pub fn admit(&mut self, priority: Priority, item: T) -> Result<Ticket, QueueFull> {
        if self.len() >= self.cap {
            return Err(QueueFull { cap: self.cap });
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.classes[priority.index()].push_back(Entry { ticket, item });
        Ok(ticket)
    }

    /// Removes and returns the next entry: highest priority class first,
    /// FIFO within the class.
    pub fn pop(&mut self) -> Option<(Ticket, Priority, T)> {
        for p in Priority::ALL {
            if let Some(e) = self.classes[p.index()].pop_front() {
                return Some((e.ticket, p, e.item));
            }
        }
        None
    }

    /// Removes the entry holding `ticket`, wherever it is queued (used by
    /// cancellation). Returns `None` when the ticket already left the
    /// queue — popped, or never admitted.
    pub fn remove(&mut self, ticket: Ticket) -> Option<T> {
        for class in &mut self.classes {
            if let Some(pos) = class.iter().position(|e| e.ticket == ticket) {
                return class.remove(pos).map(|e| e.item);
            }
        }
        None
    }
}

/// Whole-service conservation accounting.
///
/// Every submitted job ends in exactly one terminal bucket — `completed`
/// (a worker produced its result), `failed` (typed deadline/cancel/
/// exhausted rejections), `shed`, `cache_hits` (served straight from the
/// content-addressed result cache at admission), or `coalesced` (attached
/// to an identical in-flight job and handed its result) — and until it
/// does it is counted by `pending` (queued, running, or waiting on a
/// coalescing leader). The invariant `submitted == completed + failed +
/// shed + cache_hits + coalesced + pending` holds after every transition,
/// and at quiescence (`pending == 0`) reduces to the serving contract
/// *shed + completed + failed + cache_hits + coalesced = submitted*: no
/// job is ever lost or double-counted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Ledger {
    /// Jobs offered to the service (admitted, deduplicated, or shed).
    pub submitted: u64,
    /// Jobs whose result was computed by a worker (arena path or serial
    /// fallback).
    pub completed: u64,
    /// Jobs that ended with a typed error (retries exhausted, deadline
    /// exceeded, cancelled).
    pub failed: u64,
    /// Jobs rejected at admission because the queue was full.
    pub shed: u64,
    /// Jobs answered at admission from the result cache (no worker ran).
    pub cache_hits: u64,
    /// Jobs that completed by attaching to an identical in-flight job
    /// (no worker solve of their own). Followers that instead fail —
    /// cancelled, deadline, or promoted-then-failed — count under
    /// `failed`/`completed` like any other job.
    pub coalesced: u64,
    /// Admitted jobs not yet terminal (queued, running, or following an
    /// in-flight leader).
    pub pending: u64,
}

impl Ledger {
    /// The conservation law; the service debug-asserts this after every
    /// state transition and the property battery asserts it after every
    /// step of every generated schedule.
    pub fn balanced(&self) -> bool {
        self.submitted
            == self.completed
                + self.failed
                + self.shed
                + self.cache_hits
                + self.coalesced
                + self.pending
    }

    /// True when every submitted job has reached a terminal state.
    pub fn quiescent(&self) -> bool {
        self.pending == 0
    }

    pub(crate) fn on_admit(&mut self) {
        self.submitted += 1;
        self.pending += 1;
        debug_assert!(self.balanced());
    }

    pub(crate) fn on_shed(&mut self) {
        self.submitted += 1;
        self.shed += 1;
        debug_assert!(self.balanced());
    }

    pub(crate) fn on_complete(&mut self) {
        self.pending -= 1;
        self.completed += 1;
        debug_assert!(self.balanced());
    }

    pub(crate) fn on_fail(&mut self) {
        self.pending -= 1;
        self.failed += 1;
        debug_assert!(self.balanced());
    }

    /// A submission answered from the result cache: terminal immediately,
    /// never pending.
    pub(crate) fn on_cache_hit(&mut self) {
        self.submitted += 1;
        self.cache_hits += 1;
        debug_assert!(self.balanced());
    }

    /// A submission attached as a follower of an in-flight leader; it
    /// stays `pending` until the leader resolves it.
    pub(crate) fn on_coalesce_attach(&mut self) {
        self.submitted += 1;
        self.pending += 1;
        debug_assert!(self.balanced());
    }

    /// A follower handed its leader's clean result.
    pub(crate) fn on_coalesce_complete(&mut self) {
        self.pending -= 1;
        self.coalesced += 1;
        debug_assert!(self.balanced());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_class_priority_across() {
        let mut q = BoundedQueue::new(8);
        let t_low = q.admit(Priority::Low, "l0").unwrap();
        let t_n0 = q.admit(Priority::Normal, "n0").unwrap();
        let t_n1 = q.admit(Priority::Normal, "n1").unwrap();
        let t_hi = q.admit(Priority::High, "h0").unwrap();
        assert!(t_low < t_n0 && t_n0 < t_n1 && t_n1 < t_hi);
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((t_hi, Priority::High, "h0")));
        assert_eq!(q.pop(), Some((t_n0, Priority::Normal, "n0")));
        assert_eq!(q.pop(), Some((t_n1, Priority::Normal, "n1")));
        assert_eq!(q.pop(), Some((t_low, Priority::Low, "l0")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn admission_rejects_at_capacity_across_classes() {
        let mut q = BoundedQueue::new(2);
        q.admit(Priority::High, 1).unwrap();
        q.admit(Priority::Low, 2).unwrap();
        // total is capped, not per class
        assert_eq!(q.admit(Priority::Normal, 3), Err(QueueFull { cap: 2 }));
        q.pop().unwrap();
        q.admit(Priority::Normal, 3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn remove_takes_exactly_one_entry_once() {
        let mut q = BoundedQueue::new(4);
        let a = q.admit(Priority::Normal, "a").unwrap();
        let b = q.admit(Priority::Normal, "b").unwrap();
        assert_eq!(q.remove(a), Some("a"));
        assert_eq!(q.remove(a), None, "ticket already removed");
        assert_eq!(q.pop(), Some((b, Priority::Normal, "b")));
        assert_eq!(q.remove(b), None, "ticket already popped");
    }

    #[test]
    fn zero_capacity_sheds_everything() {
        let mut q = BoundedQueue::new(0);
        assert_eq!(q.admit(Priority::High, ()), Err(QueueFull { cap: 0 }));
        assert!(q.is_empty());
    }

    #[test]
    fn ledger_conservation() {
        let mut l = Ledger::default();
        l.on_admit();
        l.on_admit();
        l.on_shed();
        l.on_complete();
        l.on_fail();
        assert!(l.balanced());
        assert!(l.quiescent());
        assert_eq!((l.submitted, l.completed, l.failed, l.shed), (3, 1, 1, 1));
    }

    #[test]
    fn ledger_conservation_with_cache_buckets() {
        let mut l = Ledger::default();
        l.on_admit(); // the leader
        l.on_cache_hit();
        l.on_coalesce_attach();
        l.on_coalesce_attach();
        assert!(!l.quiescent());
        l.on_complete(); // leader finishes...
        l.on_coalesce_complete(); // ...one follower gets the result...
        l.on_fail(); // ...the other was cancelled meanwhile
        assert!(l.balanced());
        assert!(l.quiescent());
        assert_eq!(
            (
                l.submitted,
                l.completed,
                l.cache_hits,
                l.coalesced,
                l.failed
            ),
            (4, 1, 1, 1, 1)
        );
    }
}
