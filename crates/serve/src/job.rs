//! Job model: what callers submit, every state a job can be in, and the
//! rendered status table.

use std::time::Duration;

use tg_eigen::{Evd, EvdMethod};
use tg_matrix::Mat;

use crate::queue::Priority;

/// Service-assigned job identifier (dense, starting at 0, in submission
/// order — shed submissions consume an id too, so the status table shows
/// them).
pub type JobId = u64;

/// One EVD request.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Symmetric input matrix (only the lower triangle is referenced).
    pub matrix: Mat,
    /// Reduction pipeline to use.
    pub method: EvdMethod,
    /// Whether eigenvectors are wanted.
    pub want_vectors: bool,
    /// Admission class.
    pub priority: Priority,
    /// Completion deadline, measured from submission. `None` uses the
    /// service default.
    pub deadline: Option<Duration>,
}

impl JobSpec {
    /// A `Normal`-priority job with the service-default deadline.
    pub fn new(matrix: Mat, method: EvdMethod, want_vectors: bool) -> JobSpec {
        JobSpec {
            matrix,
            method,
            want_vectors,
            priority: Priority::Normal,
            deadline: None,
        }
    }

    /// Builder-style priority override.
    pub fn with_priority(mut self, priority: Priority) -> JobSpec {
        self.priority = priority;
        self
    }

    /// Builder-style deadline override.
    pub fn with_deadline(mut self, deadline: Duration) -> JobSpec {
        self.deadline = Some(deadline);
        self
    }
}

/// Why a job ended without a result. Every variant is a *clean, typed*
/// outcome — the service never lets a failure escape as a panic, a hang,
/// or a silently wrong answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailReason {
    /// The deadline passed before the job could produce a result (in the
    /// queue, between retries, or during the final attempt).
    DeadlineExceeded,
    /// The job was cancelled by the caller.
    Cancelled,
    /// Every attempt — the configured retries plus the serial-reference
    /// fallback — failed. Carries the attempt count and a description of
    /// the last error.
    Exhausted { attempts: u32, last_error: String },
}

impl std::fmt::Display for FailReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailReason::DeadlineExceeded => write!(f, "deadline exceeded"),
            FailReason::Cancelled => write!(f, "cancelled"),
            FailReason::Exhausted {
                attempts,
                last_error,
            } => write!(
                f,
                "retries exhausted after {attempts} attempts: {last_error}"
            ),
        }
    }
}

/// Lifecycle state of a job. Terminal states are `Completed`, `Failed`,
/// and `Shed`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting in the queue.
    Queued,
    /// Claimed by a worker (possibly mid-retry).
    Running,
    /// Attached as a follower of an identical in-flight job (request
    /// coalescing, `--dedup`); resolves when the leader does — to
    /// `Completed` with a clone of the leader's clean result, to
    /// `Failed`, or by promotion to a run of its own if the leader fails.
    Coalesced,
    /// Finished with a result (bitwise-identical to the direct
    /// single-problem `syevd` path).
    Completed,
    /// Finished without a result; see the [`FailReason`].
    Failed(FailReason),
    /// Rejected at admission: the queue was saturated.
    Shed,
}

impl JobStatus {
    /// Whether this state ends the job's lifecycle.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStatus::Completed | JobStatus::Failed(_) | JobStatus::Shed
        )
    }

    /// Canonical short label (stable across runs — the determinism test
    /// compares whole tables of these).
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Coalesced => "coalesced",
            JobStatus::Completed => "completed",
            JobStatus::Failed(FailReason::DeadlineExceeded) => "deadline-exceeded",
            JobStatus::Failed(FailReason::Cancelled) => "cancelled",
            JobStatus::Failed(FailReason::Exhausted { .. }) => "exhausted",
            JobStatus::Shed => "shed",
        }
    }
}

/// Terminal outcome handed back by [`crate::JobService::wait`]: the final
/// status plus the result for completed jobs (moved out — a second `wait`
/// on the same id returns the status with `result: None`).
#[derive(Debug)]
pub struct JobOutcome {
    pub id: JobId,
    pub status: JobStatus,
    /// Attempts actually executed (1 for a first-try success; 0 for jobs
    /// that never started).
    pub attempts: u32,
    /// Time from submission to the terminal transition.
    pub latency: Duration,
    /// Time spent queued before a worker first claimed the job.
    pub queue_wait: Duration,
    pub result: Option<Evd>,
}

/// One row of [`crate::JobService::status_table`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatusRow {
    pub id: JobId,
    pub priority: Priority,
    pub status_label: &'static str,
}

/// Renders rows as a fixed-width table (one line per job plus a header) —
/// the "final job-status table" the determinism contract compares.
pub fn render_status_table(rows: &[StatusRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{:>6}  {:<8}  status", "job", "priority");
    for r in rows {
        let _ = writeln!(
            out,
            "{:>6}  {:<8}  {}",
            r.id,
            format!("{:?}", r.priority).to_lowercase(),
            r.status_label
        );
    }
    out
}
