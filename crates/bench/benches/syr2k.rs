//! Criterion bench for Table 1 / Figure 8: syr2k throughput vs rank k and
//! blocking scheme (conventional strips vs the paper's square blocks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tg_blas::{syr2k_blocked, syr2k_square};
use tg_matrix::gen;

fn bench_syr2k(c: &mut Criterion) {
    let n = 256;
    let mut g = c.benchmark_group("syr2k");
    g.sample_size(10);
    for &k in &[8usize, 32, 128] {
        let a = gen::random(n, k, 1);
        let b = gen::random(n, k, 2);
        g.throughput(Throughput::Elements(tg_blas::flops::syr2k(n, k)));
        g.bench_with_input(BenchmarkId::new("blocked", k), &k, |bench, _| {
            let mut cm = gen::random_symmetric(n, 3);
            bench.iter(|| syr2k_blocked(-1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut cm.as_mut(), 64));
        });
        g.bench_with_input(BenchmarkId::new("square", k), &k, |bench, _| {
            let mut cm = gen::random_symmetric(n, 3);
            bench.iter(|| {
                syr2k_square(-1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut cm.as_mut(), 64, 2)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_syr2k);
criterion_main!(benches);
