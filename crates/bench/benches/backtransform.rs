//! Criterion bench for Figure 14: conventional ormqr-ordered back
//! transformation vs the Figure-13 blocked-W scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tg_matrix::gen;
use tridiag_core::backtransform::{apply_q1, apply_q1_blocked};
use tridiag_core::band_reduce;

fn bench_bt(c: &mut Criterion) {
    let mut g = c.benchmark_group("backtransform");
    g.sample_size(10);
    let n = 192;
    let b = 8;
    let mut a = gen::random_symmetric(n, 1);
    let red = band_reduce(&mut a, b, 64);
    let c0 = gen::random(n, n, 2);
    g.bench_function("conventional", |bench| {
        bench.iter(|| {
            let mut cm = c0.clone();
            apply_q1(&red.factors, &mut cm, false)
        });
    });
    for &k in &[32usize, 64] {
        g.bench_with_input(BenchmarkId::new("blocked_w", k), &k, |bench, &k| {
            bench.iter(|| {
                let mut cm = c0.clone();
                apply_q1_blocked(&red.factors, &mut cm, k)
            });
        });
    }

    // BC back transformation: per-reflector vs sweep-blocked (§8 extension)
    let band = tg_matrix::SymBand::from_dense_lower(&gen::random_symmetric_band(n, b, 3), b);
    let bc = tridiag_core::bulge_chase_seq(&band);
    g.bench_function("bc_reflectors", |bench| {
        bench.iter(|| {
            let mut cm = c0.clone();
            bc.apply_q_left(&mut cm, false);
            cm
        });
    });
    g.bench_function("bc_sweep_blocked", |bench| {
        bench.iter(|| {
            let mut cm = c0.clone();
            bc.apply_q_left_blocked(&mut cm, false);
            cm
        });
    });
    g.finish();
}

criterion_group!(benches, bench_bt);
criterion_main!(benches);
