//! Criterion bench for batched EVD throughput: the serial reference loop
//! vs the `tg-batch` scheduler (worker pool + cached workspace arenas).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tg_batch::BatchScheduler;
use tg_eigen::{syevd_batched, EvdMethod};
use tg_matrix::{gen, Mat};

fn bench_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_evd");
    g.sample_size(10);
    let n = 48;
    let count = 8;
    let problems: Vec<Mat> = (0..count)
        .map(|i| gen::random_symmetric(n, 1 + i as u64))
        .collect();
    let method = EvdMethod::proposed_default(n);

    g.bench_with_input(
        BenchmarkId::new("serial_loop", count),
        &problems,
        |b, probs| b.iter(|| syevd_batched(probs, &method, false).unwrap()),
    );

    let workers = tg_batch::worker_threads();
    g.bench_with_input(
        BenchmarkId::new(format!("scheduler_w{workers}"), count),
        &problems,
        |b, probs| {
            b.iter(|| {
                BatchScheduler::new(workers)
                    .syevd(probs, &method, false)
                    .unwrap()
            })
        },
    );
    g.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
