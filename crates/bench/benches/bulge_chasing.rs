//! Criterion bench for Figures 5/11/12: bulge chasing, sequential vs the
//! Algorithm-2 pipeline at several sweep counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tg_matrix::{gen, SymBand};
use tridiag_core::{bulge_chase_pipelined, bulge_chase_seq};

fn bench_bc(c: &mut Criterion) {
    let mut g = c.benchmark_group("bulge_chasing");
    g.sample_size(10);
    let n = 256;
    let b = 8;
    let band = SymBand::from_dense_lower(&gen::random_symmetric_band(n, b, 1), b);
    g.bench_function("seq", |bench| bench.iter(|| bulge_chase_seq(&band)));
    for &s in &[2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("pipelined", s), &s, |bench, &s| {
            bench.iter(|| bulge_chase_pipelined(&band, s));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bc);
criterion_main!(benches);
