//! Criterion bench for Figure 15: the three tridiagonalization pipelines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tg_matrix::gen;
use tridiag_core::{tridiagonalize, DbbrConfig, Method};

fn bench_tridiag(c: &mut Criterion) {
    let mut g = c.benchmark_group("tridiag");
    g.sample_size(10);
    let n = 192;
    let a0 = gen::random_symmetric(n, 1);
    let cases: Vec<(&str, Method)> = vec![
        ("direct", Method::Direct { nb: 16 }),
        (
            "sbr_bc",
            Method::Sbr {
                b: 8,
                parallel_sweeps: 1,
            },
        ),
        (
            "dbbr_pipelined",
            Method::Dbbr {
                cfg: DbbrConfig::new(8, 32),
                parallel_sweeps: 4,
            },
        ),
    ];
    for (name, m) in cases {
        g.bench_with_input(BenchmarkId::new(name, n), &m, |bench, m| {
            bench.iter(|| {
                let mut a = a0.clone();
                tridiagonalize(&mut a, m)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tridiag);
criterion_main!(benches);
