//! Criterion bench for Figure 16: end-to-end EVD, three pipelines,
//! with and without eigenvectors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tg_eigen::{syevd, EvdMethod};
use tg_matrix::gen;

fn bench_evd(c: &mut Criterion) {
    let mut g = c.benchmark_group("evd");
    g.sample_size(10);
    let n = 128;
    let a0 = gen::random_symmetric(n, 1);
    let cases: Vec<(&str, EvdMethod)> = vec![
        ("cusolver_like", EvdMethod::CusolverLike { nb: 16 }),
        ("magma_like", EvdMethod::MagmaLike { b: 8 }),
        (
            "proposed",
            EvdMethod::Proposed {
                b: 8,
                k: 32,
                parallel_sweeps: 4,
                backtransform_k: 64,
                lookahead: true,
            },
        ),
    ];
    for (name, m) in &cases {
        for &vectors in &[false, true] {
            let id = format!("{name}/{}", if vectors { "vectors" } else { "values" });
            g.bench_with_input(BenchmarkId::new(id, n), m, |bench, m| {
                bench.iter(|| {
                    let mut a = a0.clone();
                    syevd(&mut a, m, vectors).unwrap()
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_evd);
criterion_main!(benches);
