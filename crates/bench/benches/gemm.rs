//! Criterion bench: the GEMM kernel underlying every level-3 operation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tg_blas::{gemm, Op};
use tg_matrix::{gen, Mat};

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    g.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let a = gen::random(n, n, 1);
        let b = gen::random(n, n, 2);
        g.throughput(Throughput::Elements(tg_blas::flops::gemm(n, n, n)));
        g.bench_with_input(BenchmarkId::new("nn", n), &n, |bench, _| {
            let mut cm = Mat::zeros(n, n);
            bench.iter(|| {
                gemm(
                    1.0,
                    &a.as_ref(),
                    Op::NoTrans,
                    &b.as_ref(),
                    Op::NoTrans,
                    0.0,
                    &mut cm.as_mut(),
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("packed_nn", n), &n, |bench, _| {
            let mut cm = Mat::zeros(n, n);
            bench.iter(|| {
                tg_blas::gemm_packed(
                    1.0,
                    &a.as_ref(),
                    Op::NoTrans,
                    &b.as_ref(),
                    Op::NoTrans,
                    0.0,
                    &mut cm.as_mut(),
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("tn", n), &n, |bench, _| {
            let mut cm = Mat::zeros(n, n);
            bench.iter(|| {
                gemm(
                    1.0,
                    &a.as_ref(),
                    Op::Trans,
                    &b.as_ref(),
                    Op::NoTrans,
                    0.0,
                    &mut cm.as_mut(),
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
