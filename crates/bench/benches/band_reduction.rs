//! Criterion bench for Figure 9: SBR vs DBBR band reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tg_matrix::gen;
use tridiag_core::{band_reduce, dbbr, DbbrConfig};

fn bench_band_reduction(c: &mut Criterion) {
    let mut g = c.benchmark_group("band_reduction");
    g.sample_size(10);
    for &n in &[128usize, 256] {
        let b = 8;
        let a0 = gen::random_symmetric(n, 1);
        g.bench_with_input(BenchmarkId::new("sbr", n), &n, |bench, _| {
            bench.iter(|| {
                let mut a = a0.clone();
                band_reduce(&mut a, b, 64)
            });
        });
        g.bench_with_input(BenchmarkId::new("dbbr", n), &n, |bench, _| {
            let cfg = DbbrConfig::new(b, 4 * b);
            bench.iter(|| {
                let mut a = a0.clone();
                dbbr(&mut a, &cfg)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_band_reduction);
criterion_main!(benches);
