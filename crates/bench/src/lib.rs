//! # tg-bench
//!
//! Benchmark harness for the reproduction:
//!
//! * the `repro` binary regenerates every table and figure of the paper's
//!   evaluation (model-composed at paper scale, plus measured CPU-scale
//!   shape checks where the real kernels are exercised),
//! * the `benches/` directory holds criterion benchmarks over the real
//!   Rust kernels (syr2k variants, band reduction, bulge chasing, back
//!   transformation, tridiagonalization, EVD).

pub mod golden;
pub mod measured;
pub mod perf_diff;
pub mod report;
