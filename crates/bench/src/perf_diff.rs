//! Noise-aware perf-regression gate over `BENCH_*.json` artifacts.
//!
//! `repro perf_diff <baseline.json> <candidate.json>` compares two sweep
//! artifacts row by row and classifies every kernel/size pair:
//!
//! * **ok** — candidate within the row's relative tolerance of baseline;
//! * **improved** — candidate faster than baseline by more than the
//!   tolerance (never fails the gate, but is reported so a suspicious
//!   "improvement" from a broken timer is visible);
//! * **regression** — candidate slower than `(1 − tol) ×` baseline;
//! * **hard-regression** — candidate slower than **half** the baseline
//!   throughput. Even advisory mode fails on these: a 2× collapse is
//!   beyond any plausible scheduler noise on the rows we track.
//!
//! Tolerances are per kernel: parallel drivers (`packed-parallel`,
//! `bc_pipelined`, `scheduler_w*`, `dbbr-lookahead`) get a looser budget because their times
//! depend on how the host schedules worker threads; serial kernels get a
//! tighter one. Artifacts produced with `--reps k > 1` store median-of-k
//! times (see [`crate::measured`]), which is what makes these budgets
//! defensible — a single descheduling blip does not move the median.
//!
//! Artifacts carry a `schema_version`; files that predate the field are
//! treated as version 1. Comparing across schema versions is refused
//! (exit code 2) rather than silently matching rows that may have changed
//! meaning.

use serde_json::serde::Value;

/// Current artifact schema version written by `repro gemm_sweep`.
///
/// History: v1 = `{host_threads, note, gemm, syr2k}` (no metadata block);
/// v2 adds `schema_version`, `git_rev`, `tg_threads`, and `reps`.
pub const SCHEMA_VERSION: u64 = 2;

/// Relative throughput tolerance for serial kernels.
pub const SERIAL_TOL: f64 = 0.15;
/// Relative throughput tolerance for parallel drivers (thread-scheduling
/// noise on shared CI hosts dwarfs the serial jitter).
pub const PARALLEL_TOL: f64 = 0.25;
/// A candidate below this fraction of baseline throughput is a *hard*
/// regression — fails even advisory mode.
pub const HARD_FLOOR: f64 = 0.5;

/// One measurement row extracted from an artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRow {
    /// Row group: `"gemm"`, `"syr2k"`, `"backtransform"`, or `"stage1"`.
    pub group: String,
    /// Kernel label (e.g. `packed-serial`).
    pub kernel: String,
    /// Sweep parameter (matrix size for GEMM and backtransform, rank for
    /// syr2k).
    pub param: u64,
    /// Throughput in GFLOP/s — the compared quantity.
    pub gflops: f64,
    /// Wall seconds (reported, not compared).
    pub seconds: f64,
}

/// A parsed `BENCH_*.json` artifact.
#[derive(Clone, Debug)]
pub struct BenchFile {
    /// `schema_version` field, or 1 if absent (legacy artifact).
    pub schema_version: u64,
    /// `git_rev` metadata, if present.
    pub git_rev: Option<String>,
    /// Worker-thread count the sweep ran with.
    pub threads: Option<u64>,
    /// Timed repetitions per kernel (median-of-k), if recorded.
    pub reps: Option<u64>,
    /// All measurement rows, gemm first, then syr2k.
    pub rows: Vec<BenchRow>,
}

fn parse_rows(group: &str, arr: &Value, out: &mut Vec<BenchRow>) -> Result<(), String> {
    let items = arr
        .as_array()
        .ok_or_else(|| format!("`{group}` is not an array"))?;
    for (i, item) in items.iter().enumerate() {
        let field = |k: &str| {
            item.get(k)
                .ok_or_else(|| format!("{group}[{i}] missing `{k}`"))
        };
        out.push(BenchRow {
            group: group.to_string(),
            kernel: field("kernel")?
                .as_str()
                .ok_or_else(|| format!("{group}[{i}].kernel is not a string"))?
                .to_string(),
            param: field("param")?
                .as_u64()
                .ok_or_else(|| format!("{group}[{i}].param is not an integer"))?,
            gflops: field("gflops")?
                .as_f64()
                .ok_or_else(|| format!("{group}[{i}].gflops is not a number"))?,
            seconds: field("seconds")?.as_f64().unwrap_or(0.0),
        });
    }
    Ok(())
}

/// Parses an artifact from its JSON text.
pub fn load_bench(text: &str) -> Result<BenchFile, String> {
    let v: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e:?}"))?;
    if v.as_object().is_none() {
        return Err("top level is not an object".into());
    }
    let schema_version = v
        .get("schema_version")
        .and_then(|x| x.as_u64())
        .unwrap_or(1);
    let mut rows = Vec::new();
    if let Some(gemm) = v.get("gemm") {
        parse_rows("gemm", gemm, &mut rows)?;
    }
    if let Some(sy) = v.get("syr2k").and_then(|s| s.get("rows")) {
        parse_rows("syr2k", sy, &mut rows)?;
    }
    if let Some(bt) = v.get("backtransform").and_then(|s| s.get("rows")) {
        parse_rows("backtransform", bt, &mut rows)?;
    }
    if let Some(s1) = v.get("stage1").and_then(|s| s.get("rows")) {
        parse_rows("stage1", s1, &mut rows)?;
    }
    if rows.is_empty() {
        return Err("no measurement rows (expected `gemm`, `syr2k.rows`, \
                    `backtransform.rows`, and/or `stage1.rows`)"
            .into());
    }
    Ok(BenchFile {
        schema_version,
        git_rev: v
            .get("git_rev")
            .and_then(|x| x.as_str())
            .map(str::to_string),
        threads: v
            .get("tg_threads")
            .or_else(|| v.get("host_threads"))
            .and_then(|x| x.as_u64()),
        reps: v.get("reps").and_then(|x| x.as_u64()),
        rows,
    })
}

/// Per-kernel relative tolerance (see module docs).
pub fn kernel_tolerance(kernel: &str) -> f64 {
    if kernel.contains("parallel")
        || kernel.contains("pipelined")
        || kernel.contains("scheduler")
        || kernel.contains("lookahead")
    {
        PARALLEL_TOL
    } else {
        SERIAL_TOL
    }
}

/// Classification of one compared row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffStatus {
    /// Within tolerance.
    Ok,
    /// Faster than baseline by more than the tolerance.
    Improved,
    /// Slower than `(1 − tol) ×` baseline.
    Regression,
    /// Slower than [`HARD_FLOOR`] `×` baseline — fails even advisory mode.
    HardRegression,
    /// Row present in baseline but missing from the candidate.
    MissingInCandidate,
    /// Row present in the candidate only (reported, never fails).
    NewInCandidate,
}

/// One row of the comparison.
#[derive(Clone, Debug)]
pub struct DiffRow {
    pub group: String,
    pub kernel: String,
    pub param: u64,
    /// Baseline GFLOP/s (0 for [`DiffStatus::NewInCandidate`] rows).
    pub base_gflops: f64,
    /// Candidate GFLOP/s (0 for [`DiffStatus::MissingInCandidate`] rows).
    pub cand_gflops: f64,
    /// Applied relative tolerance.
    pub tol: f64,
    pub status: DiffStatus,
}

impl DiffRow {
    /// `candidate / baseline` throughput ratio (`NaN`-free: 0 when the
    /// baseline row is absent).
    pub fn ratio(&self) -> f64 {
        if self.base_gflops > 0.0 {
            self.cand_gflops / self.base_gflops
        } else {
            0.0
        }
    }
}

/// Result of comparing two artifacts.
#[derive(Clone, Debug)]
pub struct DiffReport {
    pub rows: Vec<DiffRow>,
    /// Baseline metadata echoed for the report header.
    pub base_rev: Option<String>,
    pub cand_rev: Option<String>,
}

impl DiffReport {
    /// Rows classified as plain regressions.
    pub fn regressions(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.status == DiffStatus::Regression)
            .count()
    }

    /// Rows classified as hard regressions (incl. vanished rows).
    pub fn hard_regressions(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| {
                matches!(
                    r.status,
                    DiffStatus::HardRegression | DiffStatus::MissingInCandidate
                )
            })
            .count()
    }

    /// Machine-readable gate verdict. `advisory = true` tolerates plain
    /// regressions (reported but exit 0) and fails only hard ones.
    pub fn exit_code(&self, advisory: bool) -> i32 {
        let fails = self.hard_regressions() > 0 || (!advisory && self.regressions() > 0);
        i32::from(fails)
    }

    /// Human-readable comparison table plus verdict line.
    pub fn render(&self, advisory: bool) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "perf_diff: baseline {} vs candidate {}\n",
            self.base_rev.as_deref().unwrap_or("(no git_rev)"),
            self.cand_rev.as_deref().unwrap_or("(no git_rev)"),
        ));
        out.push_str(&format!(
            "{:<7} {:<24} {:>6} {:>10} {:>10} {:>7} {:>6}  status\n",
            "group", "kernel", "param", "base", "cand", "ratio", "tol"
        ));
        for r in &self.rows {
            let status = match r.status {
                DiffStatus::Ok => "ok",
                DiffStatus::Improved => "improved",
                DiffStatus::Regression => "REGRESSION",
                DiffStatus::HardRegression => "HARD-REGRESSION",
                DiffStatus::MissingInCandidate => "MISSING",
                DiffStatus::NewInCandidate => "new",
            };
            let ratio = if r.base_gflops > 0.0 && r.cand_gflops > 0.0 {
                format!("{:.3}", r.ratio())
            } else {
                "n/a".to_string()
            };
            out.push_str(&format!(
                "{:<7} {:<24} {:>6} {:>10.3} {:>10.3} {:>7} {:>5.0}%  {}\n",
                r.group,
                r.kernel,
                r.param,
                r.base_gflops,
                r.cand_gflops,
                ratio,
                r.tol * 100.0,
                status
            ));
        }
        let (hard, soft) = (self.hard_regressions(), self.regressions());
        out.push_str(&format!(
            "verdict: {hard} hard / {soft} soft regressions over {} rows{} -> exit {}\n",
            self.rows.len(),
            if advisory { " (advisory mode)" } else { "" },
            self.exit_code(advisory)
        ));
        out
    }
}

/// Compares `cand` against `base`. `tol_override`, when set, replaces the
/// per-kernel tolerance on every row. Refuses cross-schema comparisons.
pub fn diff(
    base: &BenchFile,
    cand: &BenchFile,
    tol_override: Option<f64>,
) -> Result<DiffReport, String> {
    if base.schema_version != cand.schema_version {
        return Err(format!(
            "schema mismatch: baseline is v{} but candidate is v{}; \
             regenerate the baseline with the current `repro gemm_sweep` \
             instead of comparing across schema versions",
            base.schema_version, cand.schema_version
        ));
    }
    if let (Some(bt), Some(ct)) = (base.threads, cand.threads) {
        if bt != ct {
            // Thread counts change which kernel variants are comparable;
            // warn via a rendered row is overkill — refuse like schema.
            return Err(format!(
                "thread-count mismatch: baseline ran with {bt} threads, candidate with {ct}; \
                 set TG_THREADS to match before comparing"
            ));
        }
    }
    let mut rows = Vec::new();
    for b in &base.rows {
        let tol = tol_override.unwrap_or_else(|| kernel_tolerance(&b.kernel));
        match cand
            .rows
            .iter()
            .find(|c| c.group == b.group && c.kernel == b.kernel && c.param == b.param)
        {
            Some(c) => {
                let status = if c.gflops < HARD_FLOOR * b.gflops {
                    DiffStatus::HardRegression
                } else if c.gflops < (1.0 - tol) * b.gflops {
                    DiffStatus::Regression
                } else if c.gflops > (1.0 + tol) * b.gflops {
                    DiffStatus::Improved
                } else {
                    DiffStatus::Ok
                };
                rows.push(DiffRow {
                    group: b.group.clone(),
                    kernel: b.kernel.clone(),
                    param: b.param,
                    base_gflops: b.gflops,
                    cand_gflops: c.gflops,
                    tol,
                    status,
                });
            }
            None => rows.push(DiffRow {
                group: b.group.clone(),
                kernel: b.kernel.clone(),
                param: b.param,
                base_gflops: b.gflops,
                cand_gflops: 0.0,
                tol,
                status: DiffStatus::MissingInCandidate,
            }),
        }
    }
    for c in &cand.rows {
        if !base
            .rows
            .iter()
            .any(|b| b.group == c.group && b.kernel == c.kernel && b.param == c.param)
        {
            rows.push(DiffRow {
                group: c.group.clone(),
                kernel: c.kernel.clone(),
                param: c.param,
                base_gflops: 0.0,
                cand_gflops: c.gflops,
                tol: tol_override.unwrap_or_else(|| kernel_tolerance(&c.kernel)),
                status: DiffStatus::NewInCandidate,
            });
        }
    }
    Ok(DiffReport {
        rows,
        base_rev: base.git_rev.clone(),
        cand_rev: cand.git_rev.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(scale: f64) -> String {
        format!(
            r#"{{
  "schema_version": 2,
  "git_rev": "abc1234",
  "host_threads": 4,
  "tg_threads": 4,
  "reps": 3,
  "gemm": [
    {{"kernel": "naive", "param": 256, "seconds": 0.01, "gflops": {}}},
    {{"kernel": "packed-parallel(t=4)", "param": 256, "seconds": 0.005, "gflops": {}}}
  ],
  "syr2k": {{
    "n": 512,
    "rows": [
      {{"kernel": "syr2k_square", "param": 32, "seconds": 0.02, "gflops": {}}}
    ]
  }}
}}"#,
            5.0 * scale,
            10.0 * scale,
            4.0 * scale
        )
    }

    #[test]
    fn parses_rows_and_metadata() {
        let f = load_bench(&artifact(1.0)).unwrap();
        assert_eq!(f.schema_version, 2);
        assert_eq!(f.git_rev.as_deref(), Some("abc1234"));
        assert_eq!(f.threads, Some(4));
        assert_eq!(f.reps, Some(3));
        assert_eq!(f.rows.len(), 3);
        assert_eq!(f.rows[2].group, "syr2k");
        assert_eq!(f.rows[2].param, 32);
    }

    #[test]
    fn legacy_artifact_defaults_to_schema_v1() {
        let legacy = r#"{"host_threads": 4,
            "gemm": [{"kernel": "naive", "param": 64, "seconds": 0.1, "gflops": 1.0}]}"#;
        let f = load_bench(legacy).unwrap();
        assert_eq!(f.schema_version, 1);
        assert_eq!(f.git_rev, None);
    }

    #[test]
    fn self_compare_exits_zero() {
        let f = load_bench(&artifact(1.0)).unwrap();
        let report = diff(&f, &f, None).unwrap();
        assert!(report.rows.iter().all(|r| r.status == DiffStatus::Ok));
        assert_eq!(report.exit_code(false), 0);
        assert_eq!(report.exit_code(true), 0);
    }

    #[test]
    fn degraded_candidate_exits_nonzero() {
        let base = load_bench(&artifact(1.0)).unwrap();
        // 20% slower: outside the 15% serial budget, inside the 25%
        // parallel budget.
        let cand = load_bench(&artifact(0.8)).unwrap();
        let report = diff(&base, &cand, None).unwrap();
        let naive = report.rows.iter().find(|r| r.kernel == "naive").unwrap();
        assert_eq!(naive.status, DiffStatus::Regression);
        let par = report
            .rows
            .iter()
            .find(|r| r.kernel.starts_with("packed-parallel"))
            .unwrap();
        assert_eq!(par.status, DiffStatus::Ok, "parallel tol is looser");
        assert_eq!(report.exit_code(false), 1);
        assert_eq!(report.exit_code(true), 0, "no hard regressions");
    }

    #[test]
    fn halved_throughput_is_hard_even_in_advisory_mode() {
        let base = load_bench(&artifact(1.0)).unwrap();
        let cand = load_bench(&artifact(0.4)).unwrap();
        let report = diff(&base, &cand, None).unwrap();
        assert!(report.hard_regressions() >= 1);
        assert_eq!(report.exit_code(true), 1);
        assert!(report.render(true).contains("HARD-REGRESSION"));
    }

    #[test]
    fn refuses_cross_schema_comparison() {
        let v2 = load_bench(&artifact(1.0)).unwrap();
        let v1 = load_bench(
            r#"{"gemm": [{"kernel": "naive", "param": 64, "seconds": 0.1, "gflops": 1.0}]}"#,
        )
        .unwrap();
        let err = diff(&v2, &v1, None).unwrap_err();
        assert!(err.contains("schema mismatch"), "got: {err}");
        assert!(err.contains("v2") && err.contains("v1"));
    }

    #[test]
    fn missing_row_is_hard_and_new_row_is_reported() {
        let base = load_bench(&artifact(1.0)).unwrap();
        let cand = load_bench(
            r#"{"schema_version": 2, "tg_threads": 4, "gemm": [
                {"kernel": "naive", "param": 256, "seconds": 0.01, "gflops": 5.0},
                {"kernel": "naive", "param": 999, "seconds": 0.01, "gflops": 5.0}
            ]}"#,
        )
        .unwrap();
        let report = diff(&base, &cand, None).unwrap();
        assert!(report
            .rows
            .iter()
            .any(|r| r.status == DiffStatus::MissingInCandidate));
        assert!(report
            .rows
            .iter()
            .any(|r| r.status == DiffStatus::NewInCandidate && r.param == 999));
        assert_eq!(report.exit_code(true), 1, "vanished rows fail the gate");
    }

    #[test]
    fn tolerance_override_applies_to_all_rows() {
        let base = load_bench(&artifact(1.0)).unwrap();
        let cand = load_bench(&artifact(0.8)).unwrap();
        let report = diff(&base, &cand, Some(0.5)).unwrap();
        assert_eq!(report.exit_code(false), 0, "50% budget tolerates -20%");
    }

    #[test]
    fn parses_backtransform_group() {
        let text = r#"{
  "schema_version": 2,
  "tg_threads": 4,
  "panel_pool_hit_rate": 0.97,
  "backtransform": {
    "rows": [
      {"kernel": "conventional(b=8,k=64)", "param": 128, "seconds": 0.02, "gflops": 2.0},
      {"kernel": "blocked-parallel(t=4,b=8,k=64)", "param": 128, "seconds": 0.005, "gflops": 8.0}
    ]
  }
}"#;
        let f = load_bench(text).unwrap();
        assert_eq!(f.rows.len(), 2);
        assert!(f.rows.iter().all(|r| r.group == "backtransform"));
        // Blocked-parallel labels pick up the looser parallel budget via the
        // existing substring match.
        let par = &f.rows[1];
        assert_eq!(kernel_tolerance(&par.kernel), PARALLEL_TOL);
        let report = diff(&f, &f, None).unwrap();
        assert_eq!(report.exit_code(false), 0);
    }

    #[test]
    fn parses_stage1_group() {
        let text = r#"{
  "schema_version": 2,
  "tg_threads": 4,
  "stage1": {
    "rows": [
      {"kernel": "dbbr-serial(b=8,k=32)", "param": 192, "seconds": 0.05, "gflops": 3.0},
      {"kernel": "dbbr-lookahead(b=8,k=32)", "param": 192, "seconds": 0.04, "gflops": 3.7}
    ]
  }
}"#;
        let f = load_bench(text).unwrap();
        assert_eq!(f.rows.len(), 2);
        assert!(f.rows.iter().all(|r| r.group == "stage1"));
        // Look-ahead rows run a concurrent panel worker, so they pick up
        // the looser parallel budget; the serial rows stay on the tight one.
        assert_eq!(kernel_tolerance(&f.rows[0].kernel), SERIAL_TOL);
        assert_eq!(kernel_tolerance(&f.rows[1].kernel), PARALLEL_TOL);
        let report = diff(&f, &f, None).unwrap();
        assert_eq!(report.exit_code(false), 0);
    }

    #[test]
    fn committed_bench_pr10_self_compares_clean() {
        // Acceptance criterion: `repro perf_diff BENCH_PR10.json
        // BENCH_PR10.json` exits 0.
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_PR10.json"
        ))
        .expect("committed BENCH_PR10.json");
        let f = load_bench(&text).unwrap();
        assert_eq!(f.schema_version, SCHEMA_VERSION);
        assert!(f.rows.iter().any(|r| r.group == "stage1"));
        let report = diff(&f, &f, None).unwrap();
        assert_eq!(report.exit_code(false), 0);
    }

    #[test]
    fn committed_bench_pr4_self_compares_clean() {
        // Acceptance criterion: `repro perf_diff BENCH_PR4.json
        // BENCH_PR4.json` exits 0.
        let text =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR4.json"))
                .expect("committed BENCH_PR4.json");
        let f = load_bench(&text).unwrap();
        assert_eq!(f.schema_version, SCHEMA_VERSION);
        let report = diff(&f, &f, None).unwrap();
        assert_eq!(report.exit_code(false), 0);
    }

    #[test]
    fn committed_bench_pr9_self_compares_clean() {
        // Acceptance criterion: `repro perf_diff BENCH_PR9.json
        // BENCH_PR9.json` exits 0.
        let text =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR9.json"))
                .expect("committed BENCH_PR9.json");
        let f = load_bench(&text).unwrap();
        assert_eq!(f.schema_version, SCHEMA_VERSION);
        assert!(f.rows.iter().any(|r| r.group == "backtransform"));
        let report = diff(&f, &f, None).unwrap();
        assert_eq!(report.exit_code(false), 0);
    }
}
