//! Golden regression corpus computation.
//!
//! The corpus *format*, grid, and comparison logic live in
//! [`tg_check::golden`] (so the `check` crate stays free of pipeline
//! dependencies); this module owns the *computation*: it runs the paper's
//! proposed pipeline on every `(n, b, k, seed)` of
//! [`tg_check::golden::GOLDEN_GRID`] and records the reference spectrum and
//! residuals. `repro golden_regen` writes the result to
//! `tests/golden/corpus.json`; `repro verify` and the tier-1
//! `golden_corpus` test recompute and diff against that committed file.
//! See `docs/VERIFICATION.md` for the regeneration policy.

use tg_check::golden::{GoldenCorpus, GoldenEntry, GOLDEN_GRID};
use tg_eigen::{sterf, syevd, EvdMethod};
use tg_matrix::{gen, norms, Mat};
use tridiag_core::{tridiagonalize, DbbrConfig, Method};

/// Number of bulge-chasing sweeps used for every corpus entry. Fixed (not
/// derived from `n`) so corpus entries stay comparable when the default
/// heuristics move.
const PARALLEL_SWEEPS: usize = 3;

/// Runs the proposed pipeline on the matrix identified by `(n, b, k, seed)`
/// and records its spectrum and LAPACK-convention residuals.
pub fn compute_entry(n: usize, b: usize, k: usize, seed: u64) -> GoldenEntry {
    let a = gen::random_symmetric(n, seed);

    // Reduction only: gives the tridiagonal form whose `sterf` spectrum
    // serves as the in-run oracle.
    let red = tridiagonalize(
        &mut a.clone(),
        &Method::Dbbr {
            cfg: DbbrConfig::new(b, k),
            parallel_sweeps: PARALLEL_SWEEPS,
        },
    );
    let oracle = sterf(&red.tri).expect("sterf on corpus tridiagonal");

    // Full EVD with vectors: spectrum, orthogonality and similarity.
    let method = EvdMethod::Proposed {
        b,
        k,
        parallel_sweeps: PARALLEL_SWEEPS,
        backtransform_k: k,
        lookahead: true,
    };
    let evd = syevd(&mut a.clone(), &method, true).expect("syevd on corpus matrix");
    let q = evd.eigenvectors.as_ref().expect("vectors requested");
    let mut lambda = Mat::zeros(n, n);
    for (i, &v) in evd.eigenvalues.iter().enumerate() {
        lambda[(i, i)] = v;
    }

    GoldenEntry {
        n,
        b,
        k,
        seed,
        spectrum: evd.eigenvalues.clone(),
        orth_residual: norms::orthogonality_residual(q),
        sim_residual: norms::similarity_residual(&a, q, &lambda),
        spectrum_vs_sterf: norms::spectrum_error(&oracle, &evd.eigenvalues),
    }
}

/// Computes the full corpus over [`GOLDEN_GRID`].
pub fn compute_corpus() -> GoldenCorpus {
    let mut corpus = GoldenCorpus::with_defaults();
    corpus.entries = GOLDEN_GRID
        .iter()
        .map(|&(n, b, k, seed)| compute_entry(n, b, k, seed))
        .collect();
    corpus
}

/// Default on-disk location of the committed corpus
/// (`tests/golden/corpus.json` at the workspace root).
pub fn default_corpus_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("tests/golden/corpus.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_entries_are_deterministic_and_tight() {
        let (n, b, k, seed) = GOLDEN_GRID[0];
        let e1 = compute_entry(n, b, k, seed);
        let e2 = compute_entry(n, b, k, seed);
        assert_eq!(
            e1.spectrum, e2.spectrum,
            "same input must be bitwise-stable"
        );
        assert_eq!(e1.orth_residual, e2.orth_residual);
        assert!(e1.orth_residual < 1e-12, "{}", e1.orth_residual);
        assert!(e1.sim_residual < 1e-12, "{}", e1.sim_residual);
        assert!(e1.spectrum_vs_sterf < 1e-11, "{}", e1.spectrum_vs_sterf);
    }

    #[test]
    fn corpus_round_trips_and_self_compares() {
        let mut corpus = GoldenCorpus::with_defaults();
        corpus.entries = vec![compute_entry(32, 4, 8, 9)];
        let parsed = GoldenCorpus::from_json(&corpus.to_json()).unwrap();
        let diffs = parsed.compare(&corpus.entries);
        assert!(diffs.is_empty(), "{diffs:?}");
    }
}
