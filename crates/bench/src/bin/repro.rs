//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro all                 # every model-composed table/figure
//! repro table1 | fig4 | fig5 | fig8 | fig9 | fig11 | fig12 | fig14 | fig15 | fig16
//! repro anchors             # paper-number vs model-number report
//! repro ablation            # optimization ladder + (b, k) sensitivity
//! repro tune                # model-based (b, k) autotuning per size/device
//! repro verify [n]          # correctness gauntlet + golden-corpus diff
//! repro golden_regen        # recompute and write tests/golden/corpus.json
//! repro fault_campaign [--serve]
//!                           # fault-injection campaign (TG_FAULT_SEED);
//!                           # --serve drives the faults through the job
//!                           # service and demands retry-to-success or a
//!                           # typed error within deadline
//! repro serve_soak [--seconds s] [--n size] [--rate-mult x] [--trace-out path]
//!                           # open-loop soak of the job service at
//!                           # rate-mult x measured capacity (default 1.5x):
//!                           # asserts shedding engages, zero jobs lost,
//!                           # p99 in-deadline for admitted jobs
//! repro cache_soak [--ci] [--seconds s] [--n size] [--pool p] [--zipf a] [--trace-out path]
//!                           # zipf-shaped overload replayed twice — cache
//!                           # off, then cache+dedup on: asserts hit rate
//!                           # >= 50%, every result bitwise-identical to
//!                           # the direct path, the extended conservation
//!                           # ledger balances, and cache-on p99 strictly
//!                           # beats cache-off
//! repro roofline            # arithmetic-intensity placement of key kernels
//! repro whatif              # hardware-scaling what-if scenarios
//! repro fig10               # L2 cache-simulation hit rates (layout study)
//! repro measured [n]        # CPU-scale measured shape checks (real kernels)
//! repro gemm_sweep [--ci] [--reps k] [--out path]
//!                           # GEMM dispatch-path throughput sweep -> BENCH_PR4.json
//! repro backtransform_sweep [--ci] [--reps k] [--out path]
//!                           # back transformation: conventional vs pooled
//!                           # panel-parallel -> BENCH_PR9.json; --ci gates
//!                           # a 0.7x parallel-vs-serial floor and >=90%
//!                           # panel-pool steady-state hit rate
//! repro stage1_sweep [--ci] [--reps k] [--out path]
//!                           # stage-1 DBBR: serial deferred update vs
//!                           # depth-1 look-ahead -> BENCH_PR10.json; --ci
//!                           # gates a 0.7x lookahead-vs-serial floor
//! repro perf_diff <base.json> <cand.json> [--advisory] [--tol x]
//!                           # noise-aware perf-regression gate over two sweep artifacts
//! repro batch_scaling       # batched EVD: modeled GPU scaling + measured CPU-scale run
//! repro model_vs_measured   # traced-counter vs analytic-formula cross-check
//! repro json                # machine-readable dump of all model figures
//! ```

use std::env;
use tg_bench::measured;
use tg_bench::report::{fmt_time, render_table};
use tg_gpu_sim::{figures, Device};

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    match cmd {
        "all" => {
            table1();
            fig4();
            fig5();
            fig8();
            fig9();
            fig11();
            fig12();
            fig14();
            fig15();
            fig16();
            fig10();
            ablation();
            anchors();
        }
        "table1" => table1(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "fig11" => fig11(),
        "fig12" => fig12(),
        "fig14" => fig14(),
        "fig15" => fig15(),
        "fig16" => fig16(),
        "measured" => {
            let n = args
                .get(1)
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or(192);
            measured_suite(n);
        }
        "gemm_sweep" => gemm_sweep(&args[1..]),
        "backtransform_sweep" => backtransform_sweep(&args[1..]),
        "stage1_sweep" => stage1_sweep(&args[1..]),
        "perf_diff" => perf_diff(&args[1..]),
        "anchors" => anchors(),
        "ablation" => ablation(),
        "tune" => tune(),
        "roofline" => roofline(),
        "whatif" => whatif(),
        "verify" => {
            let n = args
                .get(1)
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or(160);
            verify(n);
        }
        "golden_regen" => golden_regen(),
        "fault_campaign" => {
            if args[1..].iter().any(|a| a == "--serve") {
                fault_campaign_serve();
            } else {
                fault_campaign();
            }
        }
        "serve_soak" => serve_soak(&args[1..]),
        "cache_soak" => cache_soak(&args[1..]),
        "fig10" => fig10(),
        "batch_scaling" => batch_scaling(),
        "model_vs_measured" => model_vs_measured(),
        "json" => json_dump(),
        other => {
            eprintln!("unknown subcommand: {other}");
            eprintln!("usage: repro [all|table1|fig4|fig5|fig8|fig9|fig11|fig12|fig14|fig15|fig16|measured [n]|gemm_sweep [--ci] [--reps k] [--out path]|backtransform_sweep [--ci] [--reps k] [--out path]|stage1_sweep [--ci] [--reps k] [--out path]|perf_diff <base> <cand> [--advisory] [--tol x]|verify [n]|golden_regen|fault_campaign [--serve]|serve_soak [--seconds s] [--n size] [--rate-mult x] [--trace-out path]|cache_soak [--ci] [--seconds s] [--n size] [--pool p] [--zipf a] [--trace-out path]|batch_scaling|model_vs_measured|json]");
            std::process::exit(2);
        }
    }
}

fn table1() {
    let rows: Vec<Vec<String>> = figures::table1()
        .iter()
        .map(|r| {
            vec![
                r.k.to_string(),
                format!("{:.2}", r.h100_n8192_tflops),
                format!("{:.2}", r.h100_n32768_tflops),
                format!("{:.2}", r.rtx4090_n8192_tflops),
                format!("{:.2}", r.rtx4090_n32768_tflops),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table 1 — cuBLAS DSYR2K TFLOP/s (model)",
            &[
                "k",
                "H100 n=8192",
                "H100 n=32768",
                "4090 n=8192",
                "4090 n=32768"
            ],
            &rows
        )
    );
}

fn fig4() {
    let f = figures::fig4();
    println!("── Figure 4 — EVD time breakdown, n = {} (model) ──", f.n);
    println!(
        "cuSOLVER: sytrd {} ({:.1}% of EVD, {:.2} TFLOP/s), D&C {}",
        fmt_time(f.cusolver_sytrd_s),
        100.0 * f.cusolver_tridiag_share,
        f.cusolver_tridiag_tflops,
        fmt_time(f.cusolver_dc_s),
    );
    println!(
        "MAGMA:    SBR {} + BC {} (BC = {:.0}% of tridiag, {:.2} TFLOP/s), D&C {}\n",
        fmt_time(f.magma_sbr_s),
        fmt_time(f.magma_bc_s),
        100.0 * f.magma_bc_share_of_tridiag,
        f.magma_tridiag_tflops,
        fmt_time(f.magma_dc_s),
    );
}

fn fig5() {
    let rows: Vec<Vec<String>> = figures::fig5(true)
        .iter()
        .map(|r| {
            vec![
                r.parallel_sweeps.to_string(),
                fmt_time(r.estimated_time_s),
                r.des_time_s.map(fmt_time).unwrap_or_default(),
                fmt_time(r.magma_baseline_s),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 5 — estimated GPU BC time vs parallel sweeps (n = 65536, b = 32)",
            &["S", "closed-form", "DES", "MAGMA sb2st"],
            &rows
        )
    );
}

fn fig8() {
    let rows: Vec<Vec<String>> = figures::fig8()
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format!("{:.2}", r.cublas_tflops),
                format!("{:.2}", r.ours_tflops),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 8 — SYR2K TFLOP/s, proposed vs cuBLAS (k = 1024, H100 model)",
            &["n", "cuBLAS", "proposed"],
            &rows
        )
    );
}

fn fig9() {
    let rows: Vec<Vec<String>> = figures::fig9()
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                fmt_time(r.magma_sbr_s),
                fmt_time(r.dbbr_s),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 9 — band reduction, MAGMA SBR vs DBBR (b = 64, H100 model)",
            &["n", "MAGMA SBR", "DBBR", "speedup"],
            &rows
        )
    );
}

fn fig11() {
    let rows: Vec<Vec<String>> = figures::fig11()
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                fmt_time(r.magma_s),
                fmt_time(r.naive_gpu_s),
                fmt_time(r.optimized_gpu_s),
                format!("{:.1}x", r.naive_speedup),
                format!("{:.1}x", r.optimized_speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 11 — bulge chasing (b = 32, H100 model)",
            &["n", "MAGMA", "naive GPU", "opt GPU", "naive x", "opt x"],
            &rows
        )
    );
}

fn fig12() {
    let rows: Vec<Vec<String>> = figures::fig12(16384)
        .iter()
        .map(|r| {
            vec![
                r.parallel_sweeps.to_string(),
                format!("{:.3}", r.throughput_tbs),
                format!("{:.1}", r.avg_parallelism),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 12 — BC memory throughput vs parallel sweeps (DES, n = 16384, b = 32)",
            &["S", "TB/s", "avg parallel"],
            &rows
        )
    );
}

fn fig14() {
    let rows: Vec<Vec<String>> = figures::fig14()
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                fmt_time(r.magma_s),
                fmt_time(r.ours_s),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 14 — back transformation, MAGMA ormqr vs proposed (b = 64, k = 2048)",
            &["n", "MAGMA", "proposed", "speedup"],
            &rows
        )
    );
}

fn fig15() {
    for (dev, sizes) in [
        (Device::h100(), vec![4096usize, 8192, 16384, 32768, 49152]),
        (Device::rtx4090(), vec![4096, 8192, 16384, 32768]),
    ] {
        let rows: Vec<Vec<String>> = figures::fig15(&dev, &sizes)
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    fmt_time(r.cusolver_s),
                    format!("{:.2}", r.cusolver_tflops),
                    fmt_time(r.magma_sbr_s + r.magma_bc_s),
                    format!("{:.2}", r.magma_tflops),
                    fmt_time(r.ours_stage1_s + r.ours_bc_s),
                    format!("{:.2}", r.ours_tflops),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &format!("Figure 15 — tridiagonalization on {} (model)", dev.name),
                &["n", "cuSOLVER", "TF", "MAGMA", "TF", "ours", "TF"],
                &rows
            )
        );
    }
}

fn fig16() {
    let rows: Vec<Vec<String>> = figures::fig16()
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                if r.vectors { "yes" } else { "no" }.into(),
                fmt_time(r.cusolver_s),
                fmt_time(r.magma_s),
                fmt_time(r.ours_s),
                format!("{:.2}x", r.speedup_vs_cusolver),
                format!("{:.2}x", r.speedup_vs_magma),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 16 — end-to-end EVD (H100 model)",
            &[
                "n",
                "vectors",
                "cuSOLVER",
                "MAGMA",
                "ours",
                "vs cuSOLVER",
                "vs MAGMA"
            ],
            &rows
        )
    );
}

fn measured_suite(n: usize) {
    println!("measured suite on real Rust kernels (single host, n = {n})\n");
    let header = ["kernel", "param", "time", "GFLOP/s"];

    let ms = measured::syr2k_sweep(n, &[8, 32, 128, n.min(256)]);
    println!(
        "{}",
        render_table(
            "measured: syr2k rank sweep",
            &header,
            &measured::to_rows(&ms)
        )
    );

    let b = (n / 16).clamp(2, 32);
    let ms = measured::band_reduction_compare(n, b, 4 * b);
    println!(
        "{}",
        render_table("measured: SBR vs DBBR", &header, &measured::to_rows(&ms))
    );

    let ms = measured::bulge_chasing_compare(n, b, &[2, 4, 8]);
    println!(
        "{}",
        render_table(
            "measured: bulge chasing (seq vs pipelined)",
            &header,
            &measured::to_rows(&ms)
        )
    );

    let ms = measured::backtransform_compare(n, b);
    println!(
        "{}",
        render_table(
            "measured: back transformation",
            &header,
            &measured::to_rows(&ms)
        )
    );

    let ms = measured::tridiag_compare(n);
    println!(
        "{}",
        render_table(
            "measured: tridiagonalization pipelines",
            &header,
            &measured::to_rows(&ms)
        )
    );

    let ms = measured::evd_compare(n, true);
    println!(
        "{}",
        render_table(
            "measured: EVD with eigenvectors",
            &header,
            &measured::to_rows(&ms)
        )
    );
}

/// GEMM dispatch-path throughput sweep. The full grid writes the
/// committed `BENCH_PR4.json` artifact (GEMM rows plus a syr2k grid); the
/// `--ci` reduced grid skips the artifact and instead enforces a *sanity
/// floor*: packed-parallel must stay within 0.7x of packed-serial
/// throughput. On a one-core runner the two run the same arithmetic, so
/// the floor catches a broken parallel driver (lock convoy, per-call
/// respawn storm) without pinning a flaky absolute GFLOP/s number.
fn gemm_sweep(args: &[String]) {
    let ci = args.iter().any(|a| a == "--ci");
    let reps = flag_value(args, "--reps")
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(1);
    let out_path = flag_value(args, "--out").unwrap_or("BENCH_PR4.json");
    let threads = tg_blas::worker_threads();
    let sizes: &[usize] = if ci {
        &[256, 512, 1024]
    } else {
        &[256, 512, 1024, 2048, 4096]
    };
    println!(
        "== gemm sweep ({threads} worker threads, {} grid, median of {reps}) ==\n",
        if ci { "reduced CI" } else { "full" }
    );
    let ms = measured::gemm_sweep_reps(sizes, threads, reps);
    println!(
        "{}",
        render_table(
            "measured: square GEMM through the dispatch paths",
            &["kernel", "n", "time", "GFLOP/s"],
            &measured::to_rows(&ms)
        )
    );

    let syr2k_n = if ci { 512 } else { 1024 };
    let sy = measured::syr2k_sweep(syr2k_n, &[32, 128, 512]);
    println!(
        "{}",
        render_table(
            &format!("measured: syr2k rank sweep (n = {syr2k_n})"),
            &["kernel", "k", "time", "GFLOP/s"],
            &measured::to_rows(&sy)
        )
    );

    if ci {
        for &n in sizes {
            let serial = ms
                .iter()
                .find(|m| m.param == n && m.label == "packed-serial")
                .expect("packed-serial row");
            let par = ms
                .iter()
                .find(|m| m.param == n && m.label.starts_with("packed-parallel"))
                .expect("packed-parallel row");
            if par.gflops < 0.7 * serial.gflops {
                eprintln!(
                    "gemm_sweep: packed-parallel fell below the sanity floor at n = {n}: \
                     {:.2} GFLOP/s vs {:.2} GFLOP/s serial",
                    par.gflops, serial.gflops
                );
                std::process::exit(1);
            }
        }
        println!("sanity floor passed: packed-parallel >= 0.7x packed-serial at every size");
        return;
    }

    let row = |m: &tg_bench::measured::Measurement| {
        serde_json::json!({
            "kernel": m.label,
            "param": m.param,
            "seconds": m.seconds,
            "gflops": m.gflops,
        })
    };
    let out = serde_json::json!({
        "schema_version": tg_bench::perf_diff::SCHEMA_VERSION,
        "git_rev": git_revision(),
        "tg_threads": threads,
        "reps": reps,
        "host_threads": threads,
        "note": "median-of-reps on the dev/CI host (2mnk flop convention); \
                 see EXPERIMENTS.md for the reading",
        "gemm": ms.iter().map(row).collect::<Vec<_>>(),
        "syr2k": serde_json::json!({
            "n": syr2k_n,
            "rows": sy.iter().map(row).collect::<Vec<_>>(),
        }),
    });
    std::fs::write(out_path, serde_json::to_string_pretty(&out).unwrap() + "\n")
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");
}

/// Back-transformation throughput sweep: conventional `apply_q1` vs the
/// pooled Figure-13 path, serial and panel-parallel, per `(n, b, k)`
/// shape. The full grid writes the committed `BENCH_PR9.json` artifact;
/// `--ci` runs a reduced grid and enforces two gates instead: (a)
/// blocked-parallel must stay within 0.7x of blocked-serial throughput
/// (same arithmetic on a one-core runner — the floor catches a broken
/// panel pool or a respawn storm, not a flaky absolute number), and (b)
/// the panel pools must reach a >= 90% steady-state hit rate (the
/// allocation-free hot path). The serial-vs-parallel *bitwise* assert runs
/// inside the sweep itself on every shape.
fn backtransform_sweep(args: &[String]) {
    let ci = args.iter().any(|a| a == "--ci");
    let reps = flag_value(args, "--reps")
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(3);
    let out_path = flag_value(args, "--out").unwrap_or("BENCH_PR9.json");
    let threads = tg_blas::worker_threads();
    let shapes: &[(usize, usize, usize)] = if ci {
        &[(192, 8, 64), (256, 16, 128)]
    } else {
        &[(96, 8, 32), (128, 8, 64), (192, 8, 64), (256, 16, 128)]
    };
    println!(
        "== backtransform sweep ({threads} worker threads, {} grid, median of {reps}) ==\n",
        if ci { "reduced CI" } else { "full" }
    );
    let (ms, hit_rate) = measured::backtransform_sweep_reps(shapes, threads, reps);
    println!(
        "{}",
        render_table(
            "measured: back transformation, conventional vs pooled panel-parallel",
            &["kernel", "n", "time", "GFLOP/s"],
            &measured::to_rows(&ms)
        )
    );
    println!("panel-pool steady-state hit rate: {:.1}%", 100.0 * hit_rate);

    if ci {
        for &(n, b, k) in shapes {
            let find = |prefix: &str| {
                ms.iter()
                    .find(|m| {
                        m.param == n
                            && m.label.starts_with(prefix)
                            && m.label.ends_with(&format!("b={b},k={k})"))
                    })
                    .unwrap_or_else(|| panic!("{prefix} row for n={n}"))
            };
            let serial = find("blocked-serial");
            let par = find("blocked-parallel");
            if par.gflops < 0.7 * serial.gflops {
                eprintln!(
                    "backtransform_sweep: blocked-parallel fell below the sanity floor at \
                     n = {n}: {:.2} GFLOP/s vs {:.2} GFLOP/s serial",
                    par.gflops, serial.gflops
                );
                std::process::exit(1);
            }
        }
        if hit_rate < 0.9 {
            eprintln!(
                "backtransform_sweep: panel-pool steady-state hit rate {:.1}% < 90% — \
                 the hot path is allocating",
                100.0 * hit_rate
            );
            std::process::exit(1);
        }
        println!(
            "sanity floors passed: blocked-parallel >= 0.7x blocked-serial at every shape, \
             hit rate >= 90%"
        );
        return;
    }

    let row = |m: &tg_bench::measured::Measurement| {
        serde_json::json!({
            "kernel": m.label,
            "param": m.param,
            "seconds": m.seconds,
            "gflops": m.gflops,
        })
    };
    let out = serde_json::json!({
        "schema_version": tg_bench::perf_diff::SCHEMA_VERSION,
        "git_rev": git_revision(),
        "tg_threads": threads,
        "reps": reps,
        "host_threads": threads,
        "note": "median-of-reps back-transformation sweep (2n^3 flop convention); \
                 parallel rows are bitwise-identical to serial by construction",
        "panel_pool_hit_rate": hit_rate,
        "backtransform": serde_json::json!({
            "rows": ms.iter().map(row).collect::<Vec<_>>(),
        }),
    });
    std::fs::write(out_path, serde_json::to_string_pretty(&out).unwrap() + "\n")
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");
}

fn stage1_sweep(args: &[String]) {
    let ci = args.iter().any(|a| a == "--ci");
    let reps = flag_value(args, "--reps")
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(3);
    let out_path = flag_value(args, "--out").unwrap_or("BENCH_PR10.json");
    let threads = tg_blas::worker_threads();
    let shapes: &[(usize, usize, usize)] = if ci {
        &[(192, 8, 32), (256, 8, 64)]
    } else {
        &[(96, 4, 16), (128, 8, 32), (192, 8, 32), (256, 8, 64)]
    };
    println!(
        "== stage-1 look-ahead sweep ({threads} worker threads, {} grid, median of {reps}) ==\n",
        if ci { "reduced CI" } else { "full" }
    );
    let ms = measured::stage1_sweep_reps(shapes, reps);
    println!(
        "{}",
        render_table(
            "measured: stage-1 band reduction, serial deferred update vs depth-1 look-ahead",
            &["kernel", "n", "time", "GFLOP/s"],
            &measured::to_rows(&ms)
        )
    );

    if ci {
        for &(n, b, k) in shapes {
            let find = |prefix: &str| {
                ms.iter()
                    .find(|m| {
                        m.param == n
                            && m.label.starts_with(prefix)
                            && m.label.ends_with(&format!("b={b},k={k})"))
                    })
                    .unwrap_or_else(|| panic!("{prefix} row for n={n}"))
            };
            let serial = find("dbbr-serial");
            let la = find("dbbr-lookahead");
            if la.gflops < 0.7 * serial.gflops {
                eprintln!(
                    "stage1_sweep: look-ahead fell below the sanity floor at n = {n}: \
                     {:.2} GFLOP/s vs {:.2} GFLOP/s serial",
                    la.gflops, serial.gflops
                );
                std::process::exit(1);
            }
        }
        println!("sanity floors passed: dbbr-lookahead >= 0.7x dbbr-serial at every shape");
        return;
    }

    let row = |m: &tg_bench::measured::Measurement| {
        serde_json::json!({
            "kernel": m.label,
            "param": m.param,
            "seconds": m.seconds,
            "gflops": m.gflops,
        })
    };
    let out = serde_json::json!({
        "schema_version": tg_bench::perf_diff::SCHEMA_VERSION,
        "git_rev": git_revision(),
        "tg_threads": threads,
        "reps": reps,
        "host_threads": threads,
        "note": "median-of-reps stage-1 sweep (4/3 n^3 flop convention); \
                 look-ahead rows are bitwise-identical to serial by construction",
        "stage1": serde_json::json!({
            "rows": ms.iter().map(row).collect::<Vec<_>>(),
        }),
    });
    std::fs::write(out_path, serde_json::to_string_pretty(&out).unwrap() + "\n")
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");
}

/// Value of `--flag <value>` in `args`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Short git revision of the working tree, for artifact provenance.
/// `"unknown"` when git is unavailable (e.g. a source tarball).
fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The noise-aware perf-regression gate: `repro perf_diff <base> <cand>`.
/// Exit 0 = clean, 1 = regression (advisory mode: hard regressions only),
/// 2 = unusable input (missing file, bad JSON, schema mismatch).
fn perf_diff(args: &[String]) {
    use tg_bench::perf_diff::{diff, load_bench};
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let advisory = args.iter().any(|a| a == "--advisory");
    let tol = flag_value(args, "--tol").and_then(|s| s.parse::<f64>().ok());
    let (base_path, cand_path) = match (paths.first(), paths.get(1)) {
        (Some(b), Some(c)) => (b.as_str(), c.as_str()),
        _ => {
            eprintln!(
                "usage: repro perf_diff <baseline.json> <candidate.json> [--advisory] [--tol x]"
            );
            std::process::exit(2);
        }
    };
    let load = |path: &str| match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
        Ok(text) => match load_bench(&text) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("perf_diff: {path}: {e}");
                std::process::exit(2);
            }
        },
        Err(e) => {
            eprintln!("perf_diff: {path}: {e}");
            std::process::exit(2);
        }
    };
    let base = load(base_path);
    let cand = load(cand_path);
    match diff(&base, &cand, tol) {
        Ok(report) => {
            print!("{}", report.render(advisory));
            std::process::exit(report.exit_code(advisory));
        }
        Err(e) => {
            eprintln!("perf_diff: {e}");
            std::process::exit(2);
        }
    }
}

fn anchors() {
    let report = tg_gpu_sim::anchors::anchor_report();
    let rows: Vec<Vec<String>> = report
        .iter()
        .map(|a| {
            vec![
                a.source.to_string(),
                a.quantity.to_string(),
                format!("{:.4}", a.paper),
                format!("{:.4}", a.model),
                a.unit.to_string(),
                format!("{:.1}%", a.rel_err() * 100.0),
                if a.calibrated { "yes" } else { "no" }.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Paper-vs-model anchor report",
            &[
                "source",
                "quantity",
                "paper",
                "model",
                "unit",
                "err",
                "calibrated"
            ],
            &rows
        )
    );
}

fn ablation() {
    use tg_gpu_sim::ablation;
    let dev = Device::h100();
    let n = 49152;
    let rows: Vec<Vec<String>> = ablation::ladder(&dev, n)
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                fmt_time(r.stage1_s),
                fmt_time(r.bc_s),
                fmt_time(r.total_s),
                format!("{:.2}", r.tflops),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!("Ablation ladder — tridiagonalization at n = {n} (H100 model)"),
            &["configuration", "stage 1", "BC", "total", "TFLOP/s"],
            &rows
        )
    );
    let rows: Vec<Vec<String>> = ablation::bk_sweep(&dev, n)
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                fmt_time(r.total_s),
                format!("{:.2}", r.tflops),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "(b, k) sensitivity of the final configuration",
            &["config", "total", "TFLOP/s"],
            &rows
        )
    );
}

fn tune() {
    use tg_gpu_sim::tune::tune_report;
    for dev in [Device::h100(), Device::rtx4090()] {
        let rows: Vec<Vec<String>> = [8192usize, 16384, 32768, 49152]
            .iter()
            .map(|&n| {
                let r = tune_report(&dev, n);
                vec![
                    n.to_string(),
                    format!("b={} k={}", r.config.b, r.config.k),
                    fmt_time(r.config.total_s()),
                    format!("{:.2}x", r.vs_cusolver),
                    format!("{:.2}x", r.vs_magma),
                    format!("{:.2}x", r.vs_paper_choice),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &format!("Model-tuned (b, k) on {}", dev.name),
                &[
                    "n",
                    "best config",
                    "total",
                    "vs cuSOLVER",
                    "vs MAGMA",
                    "vs (32,1024)"
                ],
                &rows
            )
        );
    }
}

fn roofline() {
    use tg_gpu_sim::roofline;
    for dev in [Device::h100(), Device::rtx4090()] {
        let rows: Vec<Vec<String>> = roofline::chart(&dev, 32768)
            .iter()
            .map(|p| {
                vec![
                    p.kernel.clone(),
                    format!("{:.1}", p.ai),
                    format!("{:.2}", p.bound_tflops),
                    format!("{:.2}", p.model_tflops),
                    if p.memory_bound { "memory" } else { "compute" }.into(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &format!("Roofline placement on {} (n = 32768)", dev.name),
                &[
                    "kernel",
                    "flops/byte",
                    "roofline TF",
                    "model TF",
                    "bound by"
                ],
                &rows
            )
        );
    }
}

fn whatif() {
    use tg_gpu_sim::whatif;
    let n = 49152;
    let rows: Vec<Vec<String>> = whatif::sweep(&Device::h100(), n)
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                fmt_time(r.stage1_s),
                fmt_time(r.bc_s),
                fmt_time(r.total_s),
                format!("{:.2}x", r.speedup_vs_base),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!("What-if hardware scaling of the proposed pipeline (n = {n})"),
            &["scenario", "stage 1", "BC", "total", "speedup"],
            &rows
        )
    );
}

fn verify(n: usize) {
    let checks = measured::verification_suite(n);
    let rows: Vec<Vec<String>> = checks
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                format!("{:.2e}", c.value),
                format!("{:.0e}", c.threshold),
                if c.pass { "PASS" } else { "FAIL" }.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!("verification gauntlet (real kernels, n = {n})"),
            &["check", "value", "threshold", "status"],
            &rows
        )
    );
    let failed = checks.iter().filter(|c| !c.pass).count();
    if failed > 0 {
        eprintln!("{failed} check(s) FAILED");
        std::process::exit(1);
    }
    println!("all {} checks passed", checks.len());
    golden_verify();
}

/// Diffs a freshly computed corpus against the committed
/// `tests/golden/corpus.json` (skipped with a notice when the file is
/// absent, e.g. in a checkout that predates the corpus).
fn golden_verify() {
    use tg_bench::golden;
    use tg_check::golden::GoldenCorpus;

    let path = golden::default_corpus_path();
    let Ok(text) = std::fs::read_to_string(&path) else {
        println!(
            "golden corpus: {} not found, skipping (run `repro golden_regen`)",
            path.display()
        );
        return;
    };
    let corpus = match GoldenCorpus::from_json(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("golden corpus: {e}");
            std::process::exit(1);
        }
    };
    let fresh: Vec<_> = corpus
        .entries
        .iter()
        .map(|e| golden::compute_entry(e.n, e.b, e.k, e.seed))
        .collect();
    let diffs = corpus.compare(&fresh);
    if diffs.is_empty() {
        println!(
            "golden corpus: {} entries match {}",
            corpus.entries.len(),
            path.display()
        );
    } else {
        for d in &diffs {
            eprintln!("golden corpus: {d}");
        }
        eprintln!(
            "golden corpus: {} mismatch(es) against {} — if the numerical \
             change is intended, regenerate with `repro golden_regen`",
            diffs.len(),
            path.display()
        );
        std::process::exit(1);
    }
}

fn golden_regen() {
    use tg_bench::golden;
    let corpus = golden::compute_corpus();
    let path = golden::default_corpus_path();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create tests/golden");
    }
    std::fs::write(&path, corpus.to_json()).expect("write corpus");
    println!(
        "wrote {} entries to {}",
        corpus.entries.len(),
        path.display()
    );
    for e in &corpus.entries {
        println!(
            "  n={:<4} b={:<3} k={:<4} seed={}  orth {:.2e}  sim {:.2e}  vs-sterf {:.2e}",
            e.n, e.b, e.k, e.seed, e.orth_residual, e.sim_residual, e.spectrum_vs_sterf
        );
    }
}

/// One batched-EVD solve that crosses every instrumented fault site:
/// DBBR (`stage1.band`, `blas.syr2k`), bulge chasing (`bc.tri`), the
/// tridiagonal eigensolver (`evd.values`), the blocked back transformation
/// (`backtransform.q`), and the single-worker arena (`arena.acquire`, which
/// needs a cache hit, i.e. at least two same-shape problems on one worker).
fn fault_workload() {
    use tg_matrix::gen;
    let n = 48;
    let problems: Vec<_> = (0..3)
        .map(|i| gen::random_symmetric(n, 1000 + i as u64))
        .collect();
    let method = tg_eigen::EvdMethod::Proposed {
        b: 8,
        k: 32,
        parallel_sweeps: 3,
        backtransform_k: 32,
        lookahead: true,
    };
    let scheduler = tg_batch::BatchScheduler::new(1);
    // Faulted runs may legitimately fail numerically (NaN/Inf propagate
    // into the tridiagonal solver); the checkers have already recorded the
    // violation by then, so the solver's error is not itself interesting.
    let _ = scheduler.syevd(&problems, &method, true);
}

/// Fault-injection campaign: arms each fault of the seed-derived plan in
/// its own strict check session and demands that (a) the fault fired and
/// (b) at least one checker caught it; then runs a clean control session
/// that must record zero failures. Exits nonzero on any undetected fault.
fn fault_campaign() {
    use tg_check::fault::FaultPlan;
    use tg_check::{CheckConfig, CheckSession};

    let seed = std::env::var("TG_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(101);
    let plan = FaultPlan::campaign(seed);
    println!(
        "== fault-injection campaign (seed {seed}, {} sites) ==",
        plan.faults.len()
    );

    let mut undetected = Vec::new();
    for fault in &plan.faults {
        let single = FaultPlan::single(fault.site, fault.kind, fault.index);
        let session = CheckSession::begin(CheckConfig::strict().with_faults(single));
        let panicked = std::panic::catch_unwind(fault_workload).is_err();
        let report = session.finish();
        let fired = !report.faults_fired.is_empty();
        let caught = !report.passed();
        println!(
            "{:<18} {:?} idx {:<4} fired={} failures={}{}",
            fault.site,
            fault.kind,
            fault.index,
            fired,
            report.failures().len(),
            if panicked { " (workload panicked)" } else { "" }
        );
        for r in report.failures() {
            println!(
                "    {} = {:.3e} (> {:.0e}): {}",
                r.checker, r.value, r.threshold, r.detail
            );
        }
        if !fired || !caught {
            undetected.push(fault.site);
        }
    }

    let session = CheckSession::begin(CheckConfig::strict());
    fault_workload();
    let clean = session.finish();
    println!(
        "clean control: {} checks, {} failures, {} faults fired",
        clean.records.len(),
        clean.failures().len(),
        clean.faults_fired.len()
    );

    let mut bad = false;
    if !undetected.is_empty() {
        eprintln!("UNDETECTED fault(s) at: {}", undetected.join(", "));
        bad = true;
    }
    if !clean.passed() || !clean.faults_fired.is_empty() {
        eprintln!("clean control run was not clean");
        bad = true;
    }
    if bad {
        std::process::exit(1);
    }
    println!("every injected fault was caught; clean run spotless");
}

/// Serving-mode fault campaign: each fault of the seed-derived plan is
/// armed in its own check session and driven through a `tg-serve`
/// [`JobService`] under admission pressure (1.5× the queue+worker
/// capacity). For every site the service must (a) reach quiescence within
/// the watchdog — no hangs, (b) lose no job (conservation ledger), and
/// (c) return every admitted job either retried-to-success with results
/// **bitwise-identical** to the direct path, or as a clean typed error
/// within its deadline. A clean control run at the end must complete
/// everything with zero retries.
fn fault_campaign_serve() {
    use std::time::Duration;
    use tg_check::fault::FaultPlan;
    use tg_check::{CheckConfig, CheckSession};
    use tg_matrix::gen;
    use tg_serve::{JobService, JobSpec, JobStatus, ServeConfig, SubmitError};

    let seed = std::env::var("TG_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(101);
    let plan = FaultPlan::campaign(seed);
    let n = 48;
    let method = tg_eigen::EvdMethod::Proposed {
        b: 8,
        k: 32,
        parallel_sweeps: 3,
        backtransform_k: 32,
        lookahead: true,
    };
    let workers: usize = 2;
    let queue_cap: usize = 4;
    // 1.5× of what the service can hold at once (workers + queue slots).
    let jobs = (3 * (workers + queue_cap)).div_ceil(2);
    let deadline = Duration::from_secs(60);
    let watchdog = Duration::from_secs(120);
    let problems: Vec<tg_matrix::Mat> = (0..jobs)
        .map(|i| gen::random_symmetric(n, 1000 + i as u64))
        .collect();
    // Uncorrupted references, computed outside any session.
    let references: Vec<_> = problems
        .iter()
        .map(|a| tg_eigen::syevd(&mut a.clone(), &method, true).expect("reference solve"))
        .collect();
    println!(
        "== serving-mode fault campaign (seed {seed}, {} sites, {jobs} jobs \
         at 1.5x capacity {workers}+{queue_cap}) ==",
        plan.faults.len()
    );

    let run_workload = |label: &str| -> (Vec<(usize, JobStatus, bool)>, tg_serve::ServiceStats) {
        let svc = JobService::start(ServeConfig {
            workers,
            queue_cap,
            default_deadline: deadline,
            max_retries: 3,
            retry_backoff: Duration::from_micros(200),
            serial_fallback: true,
            ..ServeConfig::default()
        })
        .expect("serve config is valid");
        let ids: Vec<Option<u64>> = problems
            .iter()
            .map(
                |a| match svc.submit(JobSpec::new(a.clone(), method.clone(), true)) {
                    Ok(id) => Some(id),
                    Err(SubmitError::Overloaded { .. }) => None,
                    Err(e) => panic!("unexpected rejection: {e}"),
                },
            )
            .collect();
        if !svc.wait_quiescent(watchdog) {
            // A stuck worker would also wedge shutdown's join — report the
            // hang and abandon the process rather than hanging the harness.
            eprintln!("HANG: {label}: service did not quiesce within {watchdog:?}");
            std::process::exit(1);
        }
        let outcomes = ids
            .iter()
            .enumerate()
            .filter_map(|(i, id)| id.map(|id| (i, id)))
            .map(|(i, id)| {
                let out = svc.wait(id);
                let bitwise_ok = match (&out.status, &out.result) {
                    (JobStatus::Completed, Some(evd)) => {
                        evd.eigenvalues == references[i].eigenvalues
                            && evd.eigenvectors == references[i].eigenvectors
                    }
                    (JobStatus::Completed, None) => false,
                    _ => out.latency <= deadline + Duration::from_secs(5),
                };
                (i, out.status, bitwise_ok)
            })
            .collect();
        (outcomes, svc.shutdown())
    };

    let mut bad = false;
    for fault in &plan.faults {
        let single = FaultPlan::single(fault.site, fault.kind, fault.index);
        let session = CheckSession::begin(CheckConfig::fast().with_faults(single));
        let (outcomes, stats) = run_workload(fault.site);
        let report = session.finish();
        let fired = !report.faults_fired.is_empty();
        let lost = stats.ledger.completed + stats.ledger.failed + stats.ledger.shed
            != stats.ledger.submitted;
        let dirty = outcomes.iter().filter(|(_, _, ok)| !ok).count();
        println!(
            "{:<18} {:?} idx {:<4} fired={} retries={} fallback={} \
             completed={} failed={} shed={} dirty={}",
            fault.site,
            fault.kind,
            fault.index,
            fired,
            stats.retries,
            stats.fallback_completions,
            stats.ledger.completed,
            stats.ledger.failed,
            stats.ledger.shed,
            dirty,
        );
        if !fired {
            eprintln!(
                "    fault at {} never fired under the serve workload",
                fault.site
            );
            bad = true;
        }
        if lost || !stats.ledger.balanced() {
            eprintln!("    LOST JOB(S): ledger {:?}", stats.ledger);
            bad = true;
        }
        if dirty > 0 {
            for (i, status, ok) in &outcomes {
                if !ok {
                    eprintln!("    job {i}: status {status:?} — corrupt result or late error");
                }
            }
            bad = true;
        }
    }

    let (outcomes, stats) = run_workload("clean control");
    let clean_dirty = outcomes.iter().filter(|(_, _, ok)| !ok).count();
    println!(
        "clean control: completed={} failed={} shed={} retries={} dirty={}",
        stats.ledger.completed, stats.ledger.failed, stats.ledger.shed, stats.retries, clean_dirty,
    );
    if stats.retries != 0 || clean_dirty != 0 || !stats.ledger.balanced() {
        eprintln!("clean control run was not clean");
        bad = true;
    }
    if bad {
        std::process::exit(1);
    }
    println!(
        "every fault healed through the service: zero jobs lost, no hangs, \
         admitted results bitwise-identical to the direct path"
    );
}

/// Open-loop soak of the job service (the nightly `serve_soak` CI gate).
///
/// Calibrates single-problem capacity on this machine, then submits an
/// open-loop stream at `rate-mult ×` that capacity (default 1.5× — the
/// generator never slows down for the service, so the overload is real)
/// for `--seconds`. Asserts that (a) load shedding engaged, (b) the
/// conservation ledger lost nothing, and (c) p99 of *admitted* jobs
/// finished inside their deadline. `--trace-out` additionally records the
/// run under a trace session and writes the Chrome trace plus the
/// timeline report next to it (uploaded by CI on failure).
fn serve_soak(args: &[String]) {
    use std::time::{Duration, Instant};
    use tg_matrix::gen;
    use tg_serve::{JobService, JobSpec, JobStatus, ServeConfig, SubmitError};

    let mut seconds = 60.0f64;
    let mut n = 64usize;
    let mut rate_mult = 1.5f64;
    let mut trace_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seconds" => seconds = it.next().and_then(|s| s.parse().ok()).expect("--seconds"),
            "--n" => n = it.next().and_then(|s| s.parse().ok()).expect("--n"),
            "--rate-mult" => {
                rate_mult = it.next().and_then(|s| s.parse().ok()).expect("--rate-mult")
            }
            "--trace-out" => trace_out = Some(it.next().expect("--trace-out").clone()),
            other => {
                eprintln!("serve_soak: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let method = tg_eigen::EvdMethod::proposed_default(n);
    let workers = tg_blas::threads::worker_threads();

    // Capacity calibration: mean single-problem solve time on one thread.
    let calib = gen::random_symmetric(n, 7);
    let _ = tg_eigen::syevd(&mut calib.clone(), &method, false).expect("warmup");
    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = tg_eigen::syevd(&mut calib.clone(), &method, false).expect("calibration");
    }
    let per_solve = t0.elapsed().as_secs_f64() / reps as f64;
    let capacity_hz = workers as f64 / per_solve;
    let rate_hz = rate_mult * capacity_hz;
    let total_jobs = (rate_hz * seconds).ceil().max(8.0) as usize;
    let queue_cap = (2 * workers).max(4);
    // Deadline: time to drain a full queue ahead of you, with a wide
    // margin for scheduler noise on a loaded box.
    let deadline = Duration::from_secs_f64(((queue_cap + 2) as f64 * per_solve * 10.0).max(2.0));
    println!(
        "== serve_soak: n={n}, {workers} worker(s), capacity {capacity_hz:.1} jobs/s, \
         open loop at {rate_hz:.1} jobs/s ({rate_mult}x) for {seconds:.0}s ==",
    );
    println!(
        "queue_cap {queue_cap}, deadline {:.0} ms, {total_jobs} submissions planned",
        deadline.as_secs_f64() * 1e3
    );

    // A small pool of inputs, cycled: the soak stresses serving, not gen.
    let pool: Vec<tg_matrix::Mat> = (0..32)
        .map(|i| gen::random_symmetric(n, 9000 + i as u64))
        .collect();

    let trace_session = trace_out.as_ref().map(|_| tg_trace::TraceSession::begin());
    let svc = JobService::start(ServeConfig {
        workers,
        queue_cap,
        default_deadline: deadline,
        max_retries: 2,
        retry_backoff: Duration::from_micros(200),
        serial_fallback: true,
        ..ServeConfig::default()
    })
    .expect("serve config is valid");

    let start = Instant::now();
    let mut admitted: Vec<u64> = Vec::new();
    let mut shed = 0u64;
    for i in 0..total_jobs {
        let due = start + Duration::from_secs_f64(i as f64 / rate_hz);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let spec = JobSpec::new(pool[i % pool.len()].clone(), method.clone(), false);
        match svc.submit(spec) {
            Ok(id) => admitted.push(id),
            Err(SubmitError::Overloaded { .. }) => shed += 1,
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    let submit_wall = start.elapsed();
    if !svc.wait_quiescent(deadline * 2 + Duration::from_secs(30)) {
        eprintln!("HANG: soak did not quiesce after the load stopped");
        std::process::exit(1);
    }

    let mut completed_lat: Vec<Duration> = Vec::new();
    let mut deadline_failures = 0u64;
    let mut other_failures = 0u64;
    for &id in &admitted {
        let out = svc.wait(id);
        match out.status {
            JobStatus::Completed => completed_lat.push(out.latency),
            JobStatus::Failed(tg_serve::FailReason::DeadlineExceeded) => deadline_failures += 1,
            _ => other_failures += 1,
        }
    }
    let stats = svc.shutdown();
    if let (Some(path), Some(session)) = (&trace_out, trace_session) {
        let trace = session.finish();
        std::fs::write(path, trace.chrome_json()).expect("write trace");
        let report_path = format!("{path}.timeline.txt");
        std::fs::write(&report_path, trace.timeline_report().to_string()).expect("write timeline");
        println!("wrote {path} and {report_path}");
    }

    completed_lat.sort_unstable();
    let pct = |p: f64| -> Duration {
        if completed_lat.is_empty() {
            Duration::ZERO
        } else {
            completed_lat[((completed_lat.len() - 1) as f64 * p) as usize]
        }
    };
    let l = stats.ledger;
    println!(
        "submitted {} in {:.1}s: completed {}, shed {} ({:.1}%), \
         deadline-failures {}, other failures {}, retries {}",
        l.submitted,
        submit_wall.as_secs_f64(),
        l.completed,
        l.shed,
        100.0 * l.shed as f64 / l.submitted.max(1) as f64,
        deadline_failures,
        other_failures,
        stats.retries,
    );
    println!(
        "admitted-job latency: p50 {:.1} ms, p99 {:.1} ms, max {:.1} ms (deadline {:.0} ms)",
        pct(0.50).as_secs_f64() * 1e3,
        pct(0.99).as_secs_f64() * 1e3,
        completed_lat
            .last()
            .copied()
            .unwrap_or_default()
            .as_secs_f64()
            * 1e3,
        deadline.as_secs_f64() * 1e3
    );

    let mut bad = false;
    if l.shed == 0 {
        eprintln!("FAIL: open loop at {rate_mult}x capacity never shed — overload not engaged");
        bad = true;
    }
    if l.shed != shed {
        eprintln!(
            "FAIL: generator saw {shed} typed Overloaded rejections but the ledger counted {}",
            l.shed
        );
        bad = true;
    }
    if !l.balanced() || l.completed + l.failed + l.shed != l.submitted {
        eprintln!("FAIL: jobs lost — ledger {l:?}");
        bad = true;
    }
    if l.submitted != total_jobs as u64 {
        eprintln!(
            "FAIL: {} submissions recorded of {total_jobs} sent",
            l.submitted
        );
        bad = true;
    }
    // p99 in-deadline for admitted jobs: at most 1% may blow the deadline.
    let in_deadline_violations = deadline_failures + other_failures;
    let budget = (admitted.len() as u64).div_ceil(100);
    if in_deadline_violations > budget {
        eprintln!(
            "FAIL: {in_deadline_violations} of {} admitted jobs missed their deadline \
             (p99 budget {budget})",
            admitted.len()
        );
        bad = true;
    }
    if bad {
        std::process::exit(1);
    }
    println!("soak passed: shedding engaged, zero jobs lost, p99 in-deadline");
}

/// Nightly gate for the content-addressed result cache (`cache_soak`).
///
/// Replays the *same* deterministic zipf-shaped schedule twice through the
/// job service — first with the cache disabled, then with `cache_bytes` +
/// `dedup` on — at 1.5× measured capacity, so the baseline run is a real
/// overload and the cached run must absorb it. Gates:
///
/// 1. **hit rate ≥ 50%** on the cached run (zipf repeats must actually be
///    served from the cache);
/// 2. **bitwise identity**: every completed result in *both* runs equals
///    the direct `syevd` solve of its input bit for bit — a cache hit, a
///    coalesced follower, and a miss-path solve are indistinguishable;
/// 3. **extended conservation**: `shed + completed + failed + cache_hits +
///    coalesced == submitted` at quiescence in both runs;
/// 4. **p99 strictly improves** with the cache on.
fn cache_soak(args: &[String]) {
    use std::time::{Duration, Instant};
    use tg_matrix::gen;
    use tg_serve::{JobService, JobSpec, JobStatus, ServeConfig, SubmitError};

    let mut seconds = 20.0f64;
    let mut n = 64usize;
    let mut pool_size = 16usize;
    let mut zipf_a = 1.2f64;
    let mut trace_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            // Nightly preset; explicit flags after it still override.
            "--ci" => {
                seconds = 40.0;
                pool_size = 24;
            }
            "--seconds" => seconds = it.next().and_then(|s| s.parse().ok()).expect("--seconds"),
            "--n" => n = it.next().and_then(|s| s.parse().ok()).expect("--n"),
            "--pool" => pool_size = it.next().and_then(|s| s.parse().ok()).expect("--pool"),
            "--zipf" => zipf_a = it.next().and_then(|s| s.parse().ok()).expect("--zipf"),
            "--trace-out" => trace_out = Some(it.next().expect("--trace-out").clone()),
            other => {
                eprintln!("cache_soak: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let method = tg_eigen::EvdMethod::proposed_default(n);
    let workers = tg_blas::threads::worker_threads();

    // Capacity calibration, exactly as serve_soak does it.
    let calib = gen::random_symmetric(n, 7);
    let _ = tg_eigen::syevd(&mut calib.clone(), &method, false).expect("warmup");
    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = tg_eigen::syevd(&mut calib.clone(), &method, false).expect("calibration");
    }
    let per_solve = t0.elapsed().as_secs_f64() / reps as f64;
    let capacity_hz = workers as f64 / per_solve;
    let rate_hz = 1.5 * capacity_hz;
    let total_jobs = (rate_hz * seconds).ceil().max(32.0) as usize;
    let queue_cap = (4 * workers).max(8);
    let deadline = Duration::from_secs_f64(((queue_cap + 2) as f64 * per_solve * 10.0).max(2.0));

    // The popularity-skewed request pool, and the *shared* schedule both
    // runs replay: pool index per submission, drawn from a zipf(a) CDF
    // with a fixed-seed splitmix64 stream. Identical inputs in identical
    // order is what makes the off/on p99 comparison meaningful.
    let pool: Vec<tg_matrix::Mat> = (0..pool_size)
        .map(|i| gen::random_symmetric(n, 11_000 + i as u64))
        .collect();
    let cdf: Vec<f64> = {
        let weights: Vec<f64> = (0..pool_size)
            .map(|k| 1.0 / ((k + 1) as f64).powf(zipf_a))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect()
    };
    let mut prng_state = 0x5eed_cafe_f00d_0001u64;
    let mut splitmix = move || {
        prng_state = prng_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = prng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let schedule: Vec<usize> = (0..total_jobs)
        .map(|_| {
            let u = (splitmix() >> 11) as f64 / (1u64 << 53) as f64;
            cdf.iter().position(|&c| u < c).unwrap_or(pool_size - 1)
        })
        .collect();

    // Reference results: the direct path, once per distinct input. Every
    // completed job in both runs must match its reference bit for bit.
    let reference: Vec<Vec<u64>> = pool
        .iter()
        .map(|a| {
            tg_eigen::syevd(&mut a.clone(), &method, false)
                .expect("reference solve")
                .eigenvalues
                .iter()
                .map(|x| x.to_bits())
                .collect()
        })
        .collect();

    println!(
        "== cache_soak: n={n}, pool {pool_size} (zipf {zipf_a}), {workers} worker(s), \
         capacity {capacity_hz:.1} jobs/s, open loop at {rate_hz:.1} jobs/s for \
         {seconds:.0}s x 2 runs ==",
    );
    println!(
        "queue_cap {queue_cap}, deadline {:.0} ms, {total_jobs} submissions per run",
        deadline.as_secs_f64() * 1e3
    );

    // One replay of the schedule. Returns (p99 of completed, ledger,
    // cache stats, bitwise mismatches vs the reference).
    let run = |label: &str,
               cache_bytes: u64,
               dedup: bool,
               trace_out: Option<&String>|
     -> (Duration, tg_serve::Ledger, tg_serve::ServiceStats, u64) {
        let trace_session = trace_out.map(|_| tg_trace::TraceSession::begin());
        let svc = JobService::start(ServeConfig {
            workers,
            queue_cap,
            default_deadline: deadline,
            max_retries: 2,
            retry_backoff: Duration::from_micros(200),
            serial_fallback: true,
            cache_bytes,
            dedup,
            ..ServeConfig::default()
        })
        .expect("serve config is valid");
        let start = Instant::now();
        let mut admitted: Vec<(u64, usize)> = Vec::new();
        for (i, &pi) in schedule.iter().enumerate() {
            let due = start + Duration::from_secs_f64(i as f64 / rate_hz);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            match svc.submit(JobSpec::new(pool[pi].clone(), method.clone(), false)) {
                Ok(id) => admitted.push((id, pi)),
                Err(SubmitError::Overloaded { .. }) => {}
                Err(e) => panic!("unexpected rejection: {e}"),
            }
        }
        if !svc.wait_quiescent(deadline * 2 + Duration::from_secs(30)) {
            eprintln!("HANG: {label} run did not quiesce after the load stopped");
            std::process::exit(1);
        }
        let mut completed_lat: Vec<Duration> = Vec::new();
        let mut mismatches = 0u64;
        for &(id, pi) in &admitted {
            let out = svc.wait(id);
            if out.status == JobStatus::Completed {
                completed_lat.push(out.latency);
                let evd = out.result.expect("completed job carries its result");
                let same = evd.eigenvalues.len() == reference[pi].len()
                    && evd
                        .eigenvalues
                        .iter()
                        .zip(reference[pi].iter())
                        .all(|(x, &bits)| x.to_bits() == bits);
                if !same {
                    mismatches += 1;
                }
            }
        }
        let stats = svc.shutdown();
        if let (Some(path), Some(session)) = (trace_out, trace_session) {
            let trace = session.finish();
            std::fs::write(path, trace.chrome_json()).expect("write trace");
            println!("wrote {path}");
        }
        completed_lat.sort_unstable();
        let p99 = completed_lat
            .get(((completed_lat.len().max(1) - 1) as f64 * 0.99) as usize)
            .copied()
            .unwrap_or_default();
        let l = stats.ledger;
        println!(
            "{label}: completed {}, shed {}, failed {}, cache_hits {}, coalesced {}, \
             p99 {:.1} ms, {} bitwise mismatch(es)",
            l.completed,
            l.shed,
            l.failed,
            l.cache_hits,
            l.coalesced,
            p99.as_secs_f64() * 1e3,
            mismatches,
        );
        (p99, l, stats, mismatches)
    };

    let (p99_off, l_off, _stats_off, bad_off) = run("cache-off", 0, false, None);
    let (p99_on, l_on, stats_on, bad_on) =
        run("cache-on ", 64 * 1024 * 1024, true, trace_out.as_ref());

    let hits = stats_on.cache.hits;
    let lookups = stats_on.cache.hits + stats_on.cache.misses;
    let hit_rate = hits as f64 / lookups.max(1) as f64;
    println!(
        "cache-on hit rate: {hits}/{lookups} = {:.1}% ({} insertion(s), {} eviction(s), \
         {} B live)",
        100.0 * hit_rate,
        stats_on.cache.insertions,
        stats_on.cache.evictions,
        stats_on.cache_live_bytes,
    );

    let mut bad = false;
    if hit_rate < 0.5 {
        eprintln!("FAIL: hit rate {:.1}% < 50%", 100.0 * hit_rate);
        bad = true;
    }
    if bad_off + bad_on > 0 {
        eprintln!(
            "FAIL: {bad_off}+{bad_on} completed result(s) differ bitwise from the direct path \
             — the cache (or the service) returned a wrong answer"
        );
        bad = true;
    }
    for (label, l) in [("cache-off", &l_off), ("cache-on", &l_on)] {
        if !l.balanced()
            || l.shed + l.completed + l.failed + l.cache_hits + l.coalesced != l.submitted
        {
            eprintln!("FAIL: {label} ledger lost jobs — {l:?}");
            bad = true;
        }
        if l.submitted != total_jobs as u64 {
            eprintln!(
                "FAIL: {label} recorded {} submissions of {total_jobs} sent",
                l.submitted
            );
            bad = true;
        }
    }
    if l_off.cache_hits + l_off.coalesced != 0 {
        eprintln!("FAIL: baseline run used the cache — it was configured off");
        bad = true;
    }
    if p99_on >= p99_off {
        eprintln!(
            "FAIL: cache-on p99 {:.1} ms did not beat cache-off p99 {:.1} ms",
            p99_on.as_secs_f64() * 1e3,
            p99_off.as_secs_f64() * 1e3,
        );
        bad = true;
    }
    if bad {
        std::process::exit(1);
    }
    println!(
        "cache soak passed: {:.1}% hits, all results bitwise-identical, both ledgers \
         conserved, p99 {:.1} ms -> {:.1} ms",
        100.0 * hit_rate,
        p99_off.as_secs_f64() * 1e3,
        p99_on.as_secs_f64() * 1e3,
    );
}

fn fig10() {
    use tg_gpu_sim::cache::{bc_trace_hit_rate, CacheSim};
    use tg_matrix::BandLayout;
    println!("── Figure 10 — L2 hit rate, dense-embedded vs compact band storage ──");
    println!(
        "(cache simulation of the bulge-chasing access stream)
"
    );
    let n = 4096;
    let b = 4;
    let sweeps = 512;
    let mut rows = Vec::new();
    for cap_kb in [64usize, 128, 256, 512, 1024] {
        let mut dense = CacheSim::gpu_l2(cap_kb * 1024);
        let dr = bc_trace_hit_rate(&mut dense, BandLayout::Dense { n }, n, b, sweeps, sweeps);
        let mut compact = CacheSim::gpu_l2(cap_kb * 1024);
        let cr = bc_trace_hit_rate(
            &mut compact,
            BandLayout::Compact { ldab: 2 * b + 1 },
            n,
            b,
            sweeps,
            sweeps,
        );
        rows.push(vec![
            format!("{cap_kb} KB"),
            format!("{:.3}", dr),
            format!("{:.3}", cr),
        ]);
    }
    println!(
        "{}",
        render_table(
            &format!("hit rates (n = {n}, b = {b}, {sweeps} sweeps in flight)"),
            &["L2 size", "dense layout", "compact layout"],
            &rows
        )
    );
}

fn json_dump() {
    let out = serde_json::json!({
        "table1": figures::table1(),
        "fig4": figures::fig4(),
        "fig5": figures::fig5(false),
        "fig8": figures::fig8(),
        "fig9": figures::fig9(),
        "fig11": figures::fig11(),
        "fig12": figures::fig12(16384),
        "fig14": figures::fig14(),
        "fig15_h100": figures::fig15(&Device::h100(), &[4096, 8192, 16384, 32768, 49152]),
        "fig15_rtx4090": figures::fig15(&Device::rtx4090(), &[4096, 8192, 16384, 32768]),
        "fig16": figures::fig16(),
        "anchors": tg_gpu_sim::anchors::anchor_report(),
    });
    println!("{}", serde_json::to_string_pretty(&out).unwrap());
}

/// Runs the real `tg-blas` kernels under `tg-trace` and cross-checks the
/// counted FLOPs/bytes against the analytic formulas the cost models use
/// (see `tg_gpu_sim::model_check`). Exits nonzero on >1 % disagreement.
fn model_vs_measured() {
    use tg_gpu_sim::model_check;
    println!("== model vs measured (traced counters vs analytic formulas) ==");
    let shapes = [(64usize, 8usize, 16usize), (96, 12, 24), (128, 16, 32)];
    let mut rows = model_check::model_vs_measured(&shapes);
    rows.extend(model_check::check_batched_evd(48, 5));
    rows.extend(model_check::check_checker_overhead(96));
    rows.extend(model_check::check_utilization(96, 8, 4));
    rows.extend(model_check::check_backtransform(96, 8, 32));
    rows.extend(model_check::check_stage1_overlap(72, 8, 16));
    print!("{}", model_check::report(&rows));
    if rows.iter().any(|r| !r.within_tolerance()) {
        std::process::exit(1);
    }
}

fn batch_scaling() {
    use tg_gpu_sim::batch;

    // Paper-scale composition: the acceptance configuration (64 problems
    // of n = 256) across worker counts on the modeled H100.
    let dev = Device::h100();
    let (n, count) = (256usize, 64usize);
    let pts = batch::batch_scaling(&dev, n, count, &[1, 2, 4, 8, 16], false);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.workers.to_string(),
                fmt_time(p.serial_s),
                fmt_time(p.batched_s),
                format!("{:.2}x", p.speedup()),
                format!("{:.1}%", 100.0 * p.hit_rate),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!("batch scaling — {count} EVDs of n = {n}, H100 model"),
            &["workers", "serial loop", "batched", "speedup", "arena hits"],
            &rows
        )
    );
    let at8 = pts.iter().find(|p| p.workers == 8).expect("8-worker point");
    println!(
        "modeled speedup at 8 workers: {:.2}x ({})\n",
        at8.speedup(),
        if at8.speedup() >= 2.0 {
            "meets the >=2x acceptance threshold"
        } else {
            "BELOW the >=2x acceptance threshold"
        }
    );

    // CPU-scale measured run of the real scheduler (small sizes: this
    // host is the correctness substrate, not the performance substrate).
    let workers = tg_batch::worker_threads();
    let (ms, hit_rate) = measured::batch_compare(48, 12, workers);
    println!(
        "{}",
        render_table(
            &format!("measured: batched EVD, real kernels ({workers} worker threads)"),
            &["variant", "count", "time", "GFLOP/s"],
            &measured::to_rows(&ms)
        )
    );
    println!("measured arena hit rate: {:.1}%", 100.0 * hit_rate);
}
