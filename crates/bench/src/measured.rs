//! Measured (CPU-scale) experiments over the *real* Rust kernels.
//!
//! These complement the model-composed paper-scale figures: they exercise
//! the actual implementations and verify the paper's *algorithmic* shape
//! claims that survive the hardware substitution — e.g. wider `syr2k`
//! ranks amortize per-call overheads, DBBR does the same flops as SBR with
//! far fewer trailing updates, pipelined bulge chasing matches the
//! sequential result bitwise.

use std::time::Instant;
use tg_blas::{syr2k_blocked, syr2k_square};
use tg_eigen::{syevd, EvdMethod};
use tg_matrix::gen;
use tridiag_core::{
    bulge_chase_pipelined, bulge_chase_seq, dbbr, tridiagonalize, DbbrConfig, Method,
};

/// One measured data point.
#[derive(Clone, Debug)]
pub struct Measurement {
    pub label: String,
    pub param: usize,
    pub seconds: f64,
    pub gflops: f64,
}

fn time_it(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64()
}

/// Runs `f` `reps` times and returns the **median** wall time. The median
/// is the noise-robust statistic the perf-regression gate assumes (a
/// single descheduling blip moves the mean but not the median); `reps = 1`
/// degenerates to a plain [`time_it`].
fn median_time(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut ts: Vec<f64> = (0..reps.max(1)).map(|_| time_it(&mut f)).collect();
    ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ts[ts.len() / 2]
}

/// Measured `syr2k` throughput vs rank `k` (Table 1's shape on CPU):
/// conventional blocking vs the Figure-7 square-block scheme.
pub fn syr2k_sweep(n: usize, ks: &[usize]) -> Vec<Measurement> {
    let mut out = Vec::new();
    for &k in ks {
        let a = gen::random(n, k, 1);
        let b = gen::random(n, k, 2);
        let flops = tg_blas::flops::syr2k(n, k) as f64;
        let mut c1 = gen::random_symmetric(n, 3);
        let t1 =
            time_it(|| syr2k_blocked(-1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c1.as_mut(), 64));
        out.push(Measurement {
            label: "syr2k_blocked".into(),
            param: k,
            seconds: t1,
            gflops: flops / t1 / 1e9,
        });
        let mut c2 = gen::random_symmetric(n, 3);
        let t2 =
            time_it(|| syr2k_square(-1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c2.as_mut(), 64, 2));
        out.push(Measurement {
            label: "syr2k_square".into(),
            param: k,
            seconds: t2,
            gflops: flops / t2 / 1e9,
        });
    }
    out
}

/// Measured square `n×n×n` GEMM through the three dispatch paths: the
/// naive column-axpy kernel (what every sub-threshold shape gets), the
/// packed Goto/BLIS kernel pinned to one thread, and the packed kernel
/// under the parallel driver with `threads` workers.
///
/// Also re-asserts the determinism contract on every size: the parallel
/// result must be **bitwise** identical to the serial one, because the
/// driver partitions over `ic`/`jc` strips only and never splits the
/// `pc` (k) accumulation (see `docs/PERFORMANCE.md`).
pub fn gemm_sweep(sizes: &[usize], threads: usize) -> Vec<Measurement> {
    gemm_sweep_reps(sizes, threads, 1)
}

/// [`gemm_sweep`] with `reps` timed repetitions per kernel, reporting the
/// **median** time of each. All dispatch paths write with `beta = 0`, so
/// repeating a call is idempotent and the bitwise contract still holds.
pub fn gemm_sweep_reps(sizes: &[usize], threads: usize, reps: usize) -> Vec<Measurement> {
    use tg_blas::{gemm_axpy, gemm_packed_with_threads, Op};
    let mut out = Vec::new();
    for &n in sizes {
        let a = gen::random(n, n, 21);
        let b = gen::random(n, n, 22);
        let c0 = gen::random(n, n, 23);
        let flops = tg_blas::flops::gemm(n, n, n) as f64;

        let mut c = c0.clone();
        let t = median_time(reps, || {
            gemm_axpy(
                1.0,
                &a.as_ref(),
                Op::NoTrans,
                &b.as_ref(),
                Op::NoTrans,
                0.0,
                &mut c.as_mut(),
            )
        });
        out.push(Measurement {
            label: "naive".into(),
            param: n,
            seconds: t,
            gflops: flops / t / 1e9,
        });

        let mut c_serial = c0.clone();
        let t = median_time(reps, || {
            gemm_packed_with_threads(
                1.0,
                &a.as_ref(),
                Op::NoTrans,
                &b.as_ref(),
                Op::NoTrans,
                0.0,
                &mut c_serial.as_mut(),
                1,
            )
        });
        out.push(Measurement {
            label: "packed-serial".into(),
            param: n,
            seconds: t,
            gflops: flops / t / 1e9,
        });

        let mut c_par = c0.clone();
        let t = median_time(reps, || {
            gemm_packed_with_threads(
                1.0,
                &a.as_ref(),
                Op::NoTrans,
                &b.as_ref(),
                Op::NoTrans,
                0.0,
                &mut c_par.as_mut(),
                threads,
            )
        });
        out.push(Measurement {
            label: format!("packed-parallel(t={threads})"),
            param: n,
            seconds: t,
            gflops: flops / t / 1e9,
        });

        for j in 0..n {
            for i in 0..n {
                assert!(
                    c_serial[(i, j)].to_bits() == c_par[(i, j)].to_bits(),
                    "parallel packed GEMM diverged from serial at ({i},{j}), n={n}"
                );
            }
        }
    }
    out
}

/// Measured band reduction: MAGMA-style SBR vs DBBR at equal bandwidth.
pub fn band_reduction_compare(n: usize, b: usize, k: usize) -> Vec<Measurement> {
    let a0 = gen::random_symmetric(n, 7);
    let flops = 4.0 / 3.0 * (n as f64).powi(3);
    let mut out = Vec::new();
    {
        let mut a = a0.clone();
        let t = time_it(|| {
            let _ = tridiag_core::band_reduce(&mut a, b, 64);
        });
        out.push(Measurement {
            label: format!("sbr(b={b})"),
            param: n,
            seconds: t,
            gflops: flops / t / 1e9,
        });
    }
    {
        let mut a = a0.clone();
        let cfg = DbbrConfig::new(b, k);
        let t = time_it(|| {
            let _ = dbbr(&mut a, &cfg);
        });
        out.push(Measurement {
            label: format!("dbbr(b={b},k={k})"),
            param: n,
            seconds: t,
            gflops: flops / t / 1e9,
        });
    }
    out
}

/// Measured bulge chasing: sequential vs pipelined at several worker
/// counts. Also asserts the bitwise-determinism contract.
pub fn bulge_chasing_compare(n: usize, b: usize, sweeps: &[usize]) -> Vec<Measurement> {
    let dense = gen::random_symmetric_band(n, b, 9);
    let band = tg_matrix::SymBand::from_dense_lower(&dense, b);
    let mut out = Vec::new();
    let reference = {
        let t = Instant::now();
        let r = bulge_chase_seq(&band);
        let secs = t.elapsed().as_secs_f64();
        out.push(Measurement {
            label: "bc_seq".into(),
            param: 1,
            seconds: secs,
            gflops: 6.0 * (n * n) as f64 * b as f64 / secs / 1e9,
        });
        Some(r.tri)
    };
    for &s in sweeps {
        let t = Instant::now();
        let r = bulge_chase_pipelined(&band, s);
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(
            r.tri.d,
            reference.as_ref().unwrap().d,
            "pipelined BC diverged from sequential at S={s}"
        );
        out.push(Measurement {
            label: format!("bc_pipelined(S={s})"),
            param: s,
            seconds: secs,
            gflops: 6.0 * (n * n) as f64 * b as f64 / secs / 1e9,
        });
    }
    out
}

/// Measured tridiagonalization: the three pipelines end to end.
pub fn tridiag_compare(n: usize) -> Vec<Measurement> {
    let a0 = gen::random_symmetric(n, 11);
    let flops = 4.0 / 3.0 * (n as f64).powi(3);
    let b = (n / 16).clamp(2, 32);
    let methods: Vec<(String, Method)> = vec![
        ("direct(sytrd)".into(), Method::Direct { nb: 32 }),
        (
            format!("two-stage sbr(b={b})"),
            Method::Sbr {
                b,
                parallel_sweeps: 1,
            },
        ),
        (
            format!("two-stage dbbr(b={b},k={})", 4 * b),
            Method::Dbbr {
                cfg: DbbrConfig::new(b, 4 * b),
                parallel_sweeps: 4,
            },
        ),
    ];
    methods
        .into_iter()
        .map(|(label, m)| {
            let mut a = a0.clone();
            let t = time_it(|| {
                let _ = tridiagonalize(&mut a, &m);
            });
            Measurement {
                label,
                param: n,
                seconds: t,
                gflops: flops / t / 1e9,
            }
        })
        .collect()
}

/// Measured end-to-end EVD, with and without eigenvectors.
pub fn evd_compare(n: usize, vectors: bool) -> Vec<Measurement> {
    let a0 = gen::random_symmetric(n, 13);
    let flops = 4.0 / 3.0 * (n as f64).powi(3);
    let b = (n / 16).clamp(2, 32);
    let methods: Vec<(String, EvdMethod)> = vec![
        ("cusolver-like".into(), EvdMethod::CusolverLike { nb: 32 }),
        ("magma-like".into(), EvdMethod::MagmaLike { b }),
        (
            "proposed".into(),
            EvdMethod::Proposed {
                b,
                k: 4 * b,
                parallel_sweeps: 4,
                backtransform_k: 8 * b,
                lookahead: true,
            },
        ),
    ];
    methods
        .into_iter()
        .map(|(label, m)| {
            let mut a = a0.clone();
            let t = time_it(|| {
                let _ = syevd(&mut a, &m, vectors).expect("EVD failed");
            });
            Measurement {
                label,
                param: n,
                seconds: t,
                gflops: flops / t / 1e9,
            }
        })
        .collect()
}

/// Measured back transformation: conventional vs Figure-13 blocked.
pub fn backtransform_compare(n: usize, b: usize) -> Vec<Measurement> {
    let mut a = gen::random_symmetric(n, 17);
    let red = tridiag_core::band_reduce(&mut a, b, 64);
    let c0 = gen::random(n, n, 18);
    let flops = 2.0 * (n as f64).powi(3);
    let mut out = Vec::new();
    {
        let mut c = c0.clone();
        let t = time_it(|| tridiag_core::backtransform::apply_q1(&red.factors, &mut c, false));
        out.push(Measurement {
            label: "ormqr-conventional".into(),
            param: n,
            seconds: t,
            gflops: flops / t / 1e9,
        });
    }
    for target_k in [4 * b, 16 * b] {
        let mut c = c0.clone();
        let t = time_it(|| {
            tridiag_core::backtransform::apply_q1_blocked(&red.factors, &mut c, target_k)
        });
        out.push(Measurement {
            label: format!("blocked-W(k={target_k})"),
            param: n,
            seconds: t,
            gflops: flops / t / 1e9,
        });
    }
    out
}

/// Measured back-transformation sweep (the `BENCH_PR9.json` rows): for
/// each `(n, b, target_k)` shape, the conventional per-factor `apply_q1`,
/// the pooled Figure-13 blocked path on one worker, and the same path on
/// `workers` workers — median wall time of `reps` runs each.
///
/// Two contracts are re-asserted on every shape:
///
/// * the parallel result is **bitwise identical** to the serial one (the
///   fixed-width-panel determinism contract of `apply_blocks_panels`);
/// * the panel pools reach steady state: hit rate is measured over the
///   timed reps only (one warmup run per variant precedes them), so the
///   returned rate sits near 1.0 when the hot path stops allocating.
pub fn backtransform_sweep_reps(
    shapes: &[(usize, usize, usize)],
    workers: usize,
    reps: usize,
) -> (Vec<Measurement>, f64) {
    use tridiag_core::backtransform::{apply_q1, apply_q1_blocked_ws};
    use tridiag_core::{AllocPool, PanelPools};

    let mut out = Vec::new();
    // Pools persist across shapes and reps — the steady-state claim is
    // about a long-lived driver, not a fresh pool per call.
    let mut serial_pools = PanelPools::new();
    let mut par_pools = PanelPools::new();
    let mut pool = AllocPool;
    let (mut steady_hits, mut steady_total) = (0u64, 0u64);
    for (si, &(n, b, target_k)) in shapes.iter().enumerate() {
        let mut a = gen::random_symmetric(n, 2900 + si as u64);
        let red = tridiag_core::band_reduce(&mut a, b, 64);
        let c0 = gen::random(n, n, 3900 + si as u64);
        let flops = 2.0 * (n as f64).powi(3);

        // Median-of-reps with a fresh clone of C outside each timed
        // window (the apply is cumulative, so repeating in place would
        // measure a different product).
        let median_apply = |f: &mut dyn FnMut(&mut tg_matrix::Mat)| -> (f64, tg_matrix::Mat) {
            let mut ts = Vec::with_capacity(reps.max(1));
            let mut last = c0.clone();
            for _ in 0..reps.max(1) {
                let mut c = c0.clone();
                let t = Instant::now();
                f(&mut c);
                ts.push(t.elapsed().as_secs_f64());
                last = c;
            }
            ts.sort_by(|x, y| x.partial_cmp(y).unwrap());
            (ts[ts.len() / 2], last)
        };

        let (t, _) = median_apply(&mut |c| apply_q1(&red.factors, c, false));
        out.push(Measurement {
            label: format!("conventional(b={b},k={target_k})"),
            param: n,
            seconds: t,
            gflops: flops / t / 1e9,
        });

        // Warm both pool sets so the timed reps see steady state.
        {
            let mut c = c0.clone();
            apply_q1_blocked_ws(
                &red.factors,
                &mut c,
                target_k,
                &mut pool,
                1,
                &mut serial_pools,
            );
            let mut c = c0.clone();
            apply_q1_blocked_ws(
                &red.factors,
                &mut c,
                target_k,
                &mut pool,
                workers,
                &mut par_pools,
            );
        }
        let h0 = serial_pools.hits() + par_pools.hits();
        let m0 = serial_pools.misses() + par_pools.misses();

        let (t, serial_c) = median_apply(&mut |c| {
            apply_q1_blocked_ws(&red.factors, c, target_k, &mut pool, 1, &mut serial_pools)
        });
        out.push(Measurement {
            label: format!("blocked-serial(b={b},k={target_k})"),
            param: n,
            seconds: t,
            gflops: flops / t / 1e9,
        });

        let (t, par_c) = median_apply(&mut |c| {
            apply_q1_blocked_ws(
                &red.factors,
                c,
                target_k,
                &mut pool,
                workers,
                &mut par_pools,
            )
        });
        out.push(Measurement {
            label: format!("blocked-parallel(t={workers},b={b},k={target_k})"),
            param: n,
            seconds: t,
            gflops: flops / t / 1e9,
        });

        for j in 0..n {
            for i in 0..n {
                assert!(
                    serial_c[(i, j)].to_bits() == par_c[(i, j)].to_bits(),
                    "parallel back transformation diverged from serial at ({i},{j}), \
                     n={n} b={b} k={target_k} workers={workers}"
                );
            }
        }
        let dh = serial_pools.hits() + par_pools.hits() - h0;
        let dm = serial_pools.misses() + par_pools.misses() - m0;
        steady_hits += dh;
        steady_total += dh + dm;
    }
    let hit_rate = if steady_total == 0 {
        0.0
    } else {
        steady_hits as f64 / steady_total as f64
    };
    (out, hit_rate)
}

/// Measured stage-1 (DBBR band reduction) throughput, serial deferred
/// update vs depth-1 look-ahead, at each `(n, b, k)` shape.
///
/// Every timed look-ahead run is compared **bitwise** (band and WY
/// factors) against the serial reference before its time is reported —
/// a benchmark row for a wrong answer is worse than no row.
pub fn stage1_sweep_reps(shapes: &[(usize, usize, usize)], reps: usize) -> Vec<Measurement> {
    let mut out = Vec::new();
    for (si, &(n, b, k)) in shapes.iter().enumerate() {
        let a0 = gen::random_symmetric(n, 4900 + si as u64);
        let mut serial_cfg = DbbrConfig::new(b, k);
        // Small syr2k blocks so the sb-aligned column split leaves work on
        // both sides of the fence at CPU-scale n.
        serial_cfg.nb_syr2k = 8;
        serial_cfg.lookahead = false;
        let mut la_cfg = serial_cfg.clone();
        la_cfg.lookahead = true;
        // 4/3 n^3: the stage-1 flop convention (half of a full one-stage
        // tridiagonalization's 8/3 n^3 lands in the band reduction).
        let flops = 4.0 / 3.0 * (n as f64).powi(3);

        let reference = dbbr(&mut a0.clone(), &serial_cfg);
        let t = median_time(reps, || {
            let _ = dbbr(&mut a0.clone(), &serial_cfg);
        });
        out.push(Measurement {
            label: format!("dbbr-serial(b={b},k={k})"),
            param: n,
            seconds: t,
            gflops: flops / t / 1e9,
        });

        let mut la_red = None;
        let t = median_time(reps, || {
            la_red = Some(dbbr(&mut a0.clone(), &la_cfg));
        });
        let la_red = la_red.expect("reps >= 1");
        assert_eq!(
            la_red.band, reference.band,
            "look-ahead band diverged from serial (n={n},b={b},k={k})"
        );
        assert_eq!(la_red.factors.len(), reference.factors.len());
        for ((o1, f1), (o2, f2)) in la_red.factors.iter().zip(&reference.factors) {
            assert_eq!(o1, o2);
            assert_eq!(
                (f1.w == f2.w, f1.y == f2.y),
                (true, true),
                "look-ahead WY factors diverged from serial (n={n},b={b},k={k})"
            );
        }
        out.push(Measurement {
            label: format!("dbbr-lookahead(b={b},k={k})"),
            param: n,
            seconds: t,
            gflops: flops / t / 1e9,
        });
    }
    out
}

/// One verification check outcome.
#[derive(Clone, Debug)]
pub struct Check {
    pub name: String,
    pub value: f64,
    pub threshold: f64,
    pub pass: bool,
}

fn check(name: &str, value: f64, threshold: f64) -> Check {
    Check {
        name: name.to_string(),
        value,
        threshold,
        pass: value <= threshold,
    }
}

/// End-to-end correctness gauntlet on real kernels: factorization
/// contracts, solver cross-agreement, determinism. Returns every check
/// with its measured value and threshold.
pub fn verification_suite(n: usize) -> Vec<Check> {
    use tg_matrix::{orthogonality_residual, similarity_residual};
    let mut out = Vec::new();
    let a = gen::random_symmetric(n, 99);
    let b = (n / 16).clamp(2, 32);

    // 1. DBBR + pipelined BC factorization contract
    let red = tridiagonalize(
        &mut a.clone(),
        &Method::Dbbr {
            cfg: DbbrConfig::new(b, 4 * b),
            parallel_sweeps: 8,
        },
    );
    let q = red.form_q();
    out.push(check(
        "DBBR+BC: ||QtQ - I||",
        orthogonality_residual(&q),
        1e-11,
    ));
    out.push(check(
        "DBBR+BC: ||A - QTQt||/||A||",
        similarity_residual(&a, &q, &red.tri.to_dense()),
        1e-11,
    ));

    // 2. pipelined BC determinism across worker counts
    let dense = gen::random_symmetric_band(n, b, 98);
    let band = tg_matrix::SymBand::from_dense_lower(&dense, b);
    let reference = bulge_chase_seq(&band);
    let mut max_dev = 0.0f64;
    for s in [2usize, 5, 16] {
        let r = bulge_chase_pipelined(&band, s);
        for (x, y) in r.tri.d.iter().zip(&reference.tri.d) {
            max_dev = max_dev.max((x - y).abs());
        }
    }
    out.push(check("pipelined BC bitwise determinism", max_dev, 0.0));

    // 3. solver cross-agreement on the reduced T
    let e_ql = tg_eigen::sterf(&red.tri).unwrap();
    let e_pwk = tg_eigen::sterf_pwk(&red.tri).unwrap();
    let e_dc = tg_eigen::stedc(&red.tri).unwrap().0;
    let e_bi = tg_eigen::bisect::eigenvalues(&red.tri);
    let scale = e_ql.iter().fold(1.0f64, |m, &x| m.max(x.abs()));
    let dev_of = |v: &[f64]| {
        v.iter()
            .zip(&e_ql)
            .fold(0.0f64, |m, (x, y)| m.max((x - y).abs()))
            / scale
    };
    out.push(check("QL vs PWK eigenvalues", dev_of(&e_pwk), 1e-11));
    out.push(check("QL vs D&C eigenvalues", dev_of(&e_dc), 1e-11));
    out.push(check("QL vs bisection eigenvalues", dev_of(&e_bi), 1e-11));

    // 4. full EVD residual + eigenvector orthogonality
    let evd = syevd(&mut a.clone(), &EvdMethod::proposed_default(n), true).unwrap();
    out.push(check("EVD eigenpair residual", evd.residual(&a), 1e-11));
    out.push(check(
        "EVD eigenvector orthogonality",
        orthogonality_residual(evd.eigenvectors.as_ref().unwrap()),
        1e-11,
    ));
    out
}

/// Measured batched EVD: the serial reference loop
/// ([`tg_eigen::syevd_batched`]) vs the `tg-batch` scheduler with cached
/// per-worker workspace arenas. Returns the measurements plus the arena
/// hit rate the scheduler achieved.
///
/// On a single-core host the scheduler's win is limited to allocation
/// reuse; the paper-scale overlap win is composed by
/// `tg_gpu_sim::batch` (see `repro batch_scaling`, which prints both).
pub fn batch_compare(n: usize, count: usize, workers: usize) -> (Vec<Measurement>, f64) {
    let problems: Vec<_> = (0..count)
        .map(|i| gen::random_symmetric(n, 100 + i as u64))
        .collect();
    let method = EvdMethod::proposed_default(n);
    let flops = count as f64 * 4.0 / 3.0 * (n as f64).powi(3);
    let mut out = Vec::new();

    let t_serial = time_it(|| {
        let _ = tg_eigen::syevd_batched(&problems, &method, false).expect("serial batch failed");
    });
    out.push(Measurement {
        label: "serial_loop".into(),
        param: count,
        seconds: t_serial,
        gflops: flops / t_serial / 1e9,
    });

    let batch = tg_batch::BatchScheduler::new(workers)
        .syevd(&problems, &method, false)
        .expect("batched EVD failed");
    let t_batch = batch.stats.wall.as_secs_f64();
    out.push(Measurement {
        label: format!("scheduler_w{}", batch.stats.workers),
        param: count,
        seconds: t_batch,
        gflops: flops / t_batch / 1e9,
    });
    (out, batch.stats.arena.hit_rate())
}

/// Measurement rows → printable table rows.
pub fn to_rows(ms: &[Measurement]) -> Vec<Vec<String>> {
    ms.iter()
        .map(|m| {
            vec![
                m.label.clone(),
                m.param.to_string(),
                crate::report::fmt_time(m.seconds),
                format!("{:.2}", m.gflops),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syr2k_sweep_runs() {
        let ms = syr2k_sweep(96, &[4, 16]);
        assert_eq!(ms.len(), 4);
        assert!(ms.iter().all(|m| m.seconds > 0.0 && m.gflops > 0.0));
    }

    #[test]
    fn gemm_sweep_runs_and_holds_bitwise_contract() {
        // The bitwise serial-vs-parallel assert lives inside gemm_sweep;
        // n = 160 spans several MC-row strips so the driver really splits.
        let ms = gemm_sweep(&[160], 4);
        assert_eq!(ms.len(), 3);
        assert!(ms.iter().all(|m| m.seconds > 0.0 && m.gflops > 0.0));
    }

    #[test]
    fn bc_compare_runs_and_is_deterministic() {
        let ms = bulge_chasing_compare(48, 4, &[2, 4]);
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn tridiag_compare_runs() {
        let ms = tridiag_compare(64);
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn backtransform_sweep_is_bitwise_and_reaches_steady_state() {
        // The serial-vs-parallel bitwise assert lives inside the sweep;
        // the ≥90% steady-state hit rate is the PR's acceptance bar.
        let (ms, hit_rate) = backtransform_sweep_reps(&[(64, 4, 16)], 2, 3);
        assert_eq!(ms.len(), 3);
        assert!(ms.iter().all(|m| m.seconds > 0.0 && m.gflops > 0.0));
        assert!(hit_rate >= 0.9, "steady-state hit rate {hit_rate}");
    }

    #[test]
    fn stage1_sweep_is_bitwise_checked() {
        // The look-ahead-vs-serial bitwise assert lives inside the sweep.
        let ms = stage1_sweep_reps(&[(64, 4, 16)], 2);
        assert_eq!(ms.len(), 2);
        assert!(ms.iter().all(|m| m.seconds > 0.0 && m.gflops > 0.0));
    }
}
