//! Plain-text table rendering for the `repro` binary.

/// Renders a table: header row + data rows, columns right-aligned.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("── {title} ──\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let hdr: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats seconds adaptively (µs/ms/s).
pub fn fmt_time(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = render_table(
            "demo",
            &["n", "time"],
            &[
                vec!["8".into(), "1.0".into()],
                vec!["1024".into(), "12.5".into()],
            ],
        );
        assert!(t.contains("demo"));
        assert!(t.contains("1024"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn time_units() {
        assert_eq!(fmt_time(2.5), "2.50s");
        assert_eq!(fmt_time(0.0025), "2.5ms");
        assert_eq!(fmt_time(2.5e-6), "2.5us");
    }
}
