//! Partial-spectrum solve: the top-k eigenpairs of a covariance-like
//! matrix via `syevx` (tridiagonalize once, bisect only the wanted
//! eigenvalues, inverse-iterate only their vectors, back-transform k
//! columns). Compares cost and agreement against the full solve.
//!
//! ```text
//! cargo run --release --example partial_spectrum [n] [k]
//! ```

use std::time::Instant;
use tridiag_gpu::eigen::{largest_k, syevd, EvdMethod};
use tridiag_gpu::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let k: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    // covariance-like spectrum: a few dominant directions + noise floor
    let eigs: Vec<f64> = (0..n)
        .map(|i| {
            if i >= n - 6 {
                10.0 * (i as f64 - (n - 7) as f64)
            } else {
                0.01 + 1e-4 * i as f64
            }
        })
        .collect();
    let a = gen::with_spectrum(&eigs, 33);
    let method = EvdMethod::proposed_default(n);

    println!("n = {n}: extracting the top {k} eigenpairs\n");

    let t = Instant::now();
    let part = largest_k(&mut a.clone(), &method, k);
    let t_part = t.elapsed();

    let t = Instant::now();
    let full = syevd(&mut a.clone(), &method, true).expect("full solve failed");
    let t_full = t.elapsed();

    println!("partial solve: {t_part:?}");
    println!(
        "full solve:    {t_full:?}  ({:.1}x slower)",
        t_full.as_secs_f64() / t_part.as_secs_f64()
    );

    // agreement on the shared eigenvalues
    let mut worst = 0.0f64;
    for (i, &lam) in part.eigenvalues.iter().enumerate() {
        worst = worst.max((lam - full.eigenvalues[n - k + i]).abs());
    }
    println!("\nmax |λ_partial − λ_full| = {worst:.2e}");
    assert!(worst < 1e-9);

    // eigenvector quality: residual per pair
    let v = part.eigenvectors.as_ref().unwrap();
    let scale = part.eigenvalues.iter().fold(1.0f64, |m, &x| m.max(x.abs()));
    let mut worst_res = 0.0f64;
    for j in 0..k {
        let col = v.col(j);
        for i in 0..n {
            let mut s = 0.0;
            for l in 0..n {
                s += a[(i, l)] * col[l];
            }
            worst_res = worst_res.max((s - part.eigenvalues[j] * col[i]).abs());
        }
    }
    println!("max eigenpair residual   = {:.2e}", worst_res / scale);
    assert!(worst_res / scale < 1e-9);

    println!("\ntop eigenvalues: {:?}", &part.eigenvalues);
}
