//! Banded-operator eigensolver: a discretized 1-D Schrödinger operator
//! `H = −d²/dx² + V(x)` with a harmonic potential, solved directly from
//! band storage with [`tg_eigen::sbevd`] — no dense reduction stage at all.
//!
//! The low eigenvalues of the continuum harmonic oscillator are
//! `E_k = (2k + 1)·√ω` (in the units used below); the discretization
//! reproduces them to `O(h²)`, which this example verifies.
//!
//! ```text
//! cargo run --release --example banded_operator [n]
//! ```

use tridiag_gpu::eigen::sbevd::sbevd;
use tridiag_gpu::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    // domain [-L, L], grid spacing h
    let l = 12.0f64;
    let h = 2.0 * l / (n as f64 + 1.0);
    let omega2 = 1.0f64; // V(x) = ω² x² with ω = 1

    // 4th-order accurate 5-point Laplacian ⇒ bandwidth-2 symmetric operator
    let b = 2;
    let mut op = SymBand::zeros(n, b);
    let inv_h2 = 1.0 / (h * h);
    for i in 0..n {
        let x = -l + (i as f64 + 1.0) * h;
        *op.at_mut(i, i) = 2.5 * inv_h2 + omega2 * x * x;
        if i + 1 < n {
            *op.at_mut(i + 1, i) = -4.0 / 3.0 * inv_h2;
        }
        if i + 2 < n {
            *op.at_mut(i + 2, i) = inv_h2 / 12.0;
        }
    }

    println!("1-D Schrödinger operator, n = {n}, h = {h:.4}, bandwidth {b} (5-point stencil)\n");
    let t = std::time::Instant::now();
    let evd = sbevd(&op, 8, true).expect("eigensolver failed");
    println!(
        "sbevd (pipelined BC + divide & conquer): {:?}\n",
        t.elapsed()
    );

    println!(
        "{:>4}  {:>12}  {:>12}  {:>10}",
        "k", "computed", "exact", "error"
    );
    let mut worst = 0.0f64;
    for k in 0..8 {
        let exact = 2.0 * k as f64 + 1.0; // E_k = (2k+1)·ω with ω = 1
        let got = evd.eigenvalues[k];
        let err = (got - exact).abs();
        worst = worst.max(err);
        println!("{k:>4}  {got:>12.6}  {exact:>12.6}  {err:>10.2e}");
    }
    assert!(
        worst < 5e-3,
        "discretization error too large — check the stencil"
    );

    // ground-state wavefunction: a Gaussian, no nodes
    let v = evd.eigenvectors.as_ref().unwrap();
    let ground = v.col(0);
    let sign_changes = ground
        .windows(2)
        .filter(|w| w[0].signum() != w[1].signum() && w[0].abs() > 1e-8 && w[1].abs() > 1e-8)
        .count();
    println!("\nground state has {sign_changes} sign changes (expected 0)");
    assert_eq!(sign_changes, 0);
    let residual = evd.residual(&op.to_dense());
    println!("eigenpair residual: {residual:.2e}");
}
