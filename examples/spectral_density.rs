//! Tight-binding spectral density — the condensed-matter workload class
//! that motivates large symmetric EVD in the paper's §7.2.
//!
//! Builds a 1-D Anderson-model Hamiltonian (nearest-neighbour hopping with
//! on-site disorder), diagonalizes it through the full two-stage pipeline
//! (embedding the tridiagonal Hamiltonian in a dense symmetric matrix via
//! a random orthogonal similarity first, so the whole reduction stack is
//! exercised), and prints the integrated density of states.
//!
//! ```text
//! cargo run --release --example spectral_density [n] [disorder]
//! ```

use std::env;
use tridiag_gpu::blas::{gemm, Op};
use tridiag_gpu::prelude::*;

fn main() {
    let n: usize = env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(160);
    let w: f64 = env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.5);

    println!("1-D tight-binding chain: n = {n}, hopping t = 1, disorder W = {w}\n");

    // H as a tridiagonal matrix, then disguised as a dense symmetric matrix
    // via Q H Qᵀ so the band-reduction pipeline has real work to do.
    let h = gen::tight_binding_1d(n, 1.0, w, 11);
    let q = gen::random_orthogonal(n, 12);
    let hd = h.to_dense();
    let hq = {
        let tmp =
            tridiag_gpu::blas::gemm_into(1.0, &q.as_ref(), Op::NoTrans, &hd.as_ref(), Op::NoTrans);
        let mut out = Mat::zeros(n, n);
        gemm(
            1.0,
            &tmp.as_ref(),
            Op::NoTrans,
            &q.as_ref(),
            Op::Trans,
            0.0,
            &mut out.as_mut(),
        );
        // enforce exact symmetry after the two GEMMs
        let mut s = out.clone();
        for j in 0..n {
            for i in 0..n {
                s[(i, j)] = 0.5 * (out[(i, j)] + out[(j, i)]);
            }
        }
        s
    };

    let evd =
        syevd(&mut hq.clone(), &EvdMethod::proposed_default(n), false).expect("eigensolver failed");
    let eigs = &evd.eigenvalues;

    // cross-check against the direct tridiagonal solve of H itself
    let direct = sterf(&h).expect("reference solve failed");
    let worst = eigs
        .iter()
        .zip(&direct)
        .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
    println!("max |λ(pipeline) − λ(direct tridiagonal)| = {worst:.2e}\n");

    // integrated density of states in 13 bins over the spectrum
    let (lo, hi) = (eigs[0], eigs[n - 1]);
    let bins = 13;
    let mut hist = vec![0usize; bins];
    for &e in eigs {
        let t = ((e - lo) / (hi - lo) * bins as f64) as usize;
        hist[t.min(bins - 1)] += 1;
    }
    println!("density of states over [{lo:.3}, {hi:.3}]:");
    let max = *hist.iter().max().unwrap();
    for (i, &c) in hist.iter().enumerate() {
        let e0 = lo + (hi - lo) * i as f64 / bins as f64;
        let bar = "#".repeat(c * 50 / max.max(1));
        println!("  {e0:>8.3}  {c:>4}  {bar}");
    }
    println!("\nband edges of the clean chain are ±2t = ±2; disorder W = {w} broadens them.");
}
