//! Principal component analysis via symmetric EVD — the paper's §7.2
//! applications list opens with PCA.
//!
//! Generates a synthetic dataset with a planted low-dimensional structure,
//! forms the covariance matrix, eigendecomposes it with the proposed
//! pipeline, and reports the explained-variance spectrum and the recovery
//! of the planted components.
//!
//! ```text
//! cargo run --release --example pca [features] [samples]
//! ```

use std::env;
use tridiag_gpu::prelude::*;

fn main() {
    let d: usize = env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    let m: usize = env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);
    let planted = 5usize;
    println!("PCA: {m} samples × {d} features, {planted} planted components\n");

    // planted directions with decaying strengths + isotropic noise
    let basis = gen::random_orthogonal(d, 21);
    let latent = gen::random(m, planted, 22);
    let noise = gen::random(m, d, 23);
    let strengths: Vec<f64> = (0..planted).map(|i| 8.0 / (1.0 + i as f64)).collect();

    // X[s][f] = Σ_c latent[s][c]·strength[c]·basis[f][c] + 0.3·noise
    let mut x = Mat::zeros(m, d);
    for s in 0..m {
        for f in 0..d {
            let mut v = 0.3 * noise[(s, f)];
            for c in 0..planted {
                v += latent[(s, c)] * strengths[c] * basis[(f, c)];
            }
            x[(s, f)] = v;
        }
    }

    // column-center, then covariance C = XᵀX / (m − 1)
    for f in 0..d {
        let mean: f64 = (0..m).map(|s| x[(s, f)]).sum::<f64>() / m as f64;
        for s in 0..m {
            x[(s, f)] -= mean;
        }
    }
    let mut cov = Mat::zeros(d, d);
    tridiag_gpu::blas::gemm(
        1.0 / (m as f64 - 1.0),
        &x.as_ref(),
        tridiag_gpu::blas::Op::Trans,
        &x.as_ref(),
        tridiag_gpu::blas::Op::NoTrans,
        0.0,
        &mut cov.as_mut(),
    );
    // exact symmetry
    for j in 0..d {
        for i in 0..j {
            let v = 0.5 * (cov[(i, j)] + cov[(j, i)]);
            cov[(i, j)] = v;
            cov[(j, i)] = v;
        }
    }

    let evd =
        syevd(&mut cov.clone(), &EvdMethod::proposed_default(d), true).expect("eigensolver failed");
    let eigs = &evd.eigenvalues;
    let v = evd.eigenvectors.as_ref().unwrap();

    let total: f64 = eigs.iter().sum();
    println!("top 8 principal components (descending):");
    println!(
        "{:>4}  {:>12}  {:>10}  {:>16}",
        "pc", "variance", "explained", "|cos| to planted"
    );
    let mut cum = 0.0;
    for i in 0..8.min(d) {
        let idx = d - 1 - i; // eigenvalues ascend
        cum += eigs[idx];
        // best alignment against any planted basis direction
        let pc = v.col(idx);
        let mut best = 0.0f64;
        for c in 0..planted {
            let mut dot = 0.0;
            for f in 0..d {
                dot += pc[f] * basis[(f, c)];
            }
            best = best.max(dot.abs());
        }
        println!(
            "{:>4}  {:>12.4}  {:>9.1}%  {:>16.4}",
            i + 1,
            eigs[idx],
            100.0 * cum / total,
            best
        );
    }

    // the planted components must dominate and be recovered
    let recovered = (0..planted)
        .filter(|&i| {
            let pc = v.col(d - 1 - i);
            (0..planted).any(|c| {
                let dot: f64 = (0..d).map(|f| pc[f] * basis[(f, c)]).sum();
                dot.abs() > 0.9
            })
        })
        .count();
    println!("\nrecovered {recovered}/{planted} planted directions with |cos| > 0.9");
    assert!(
        recovered >= planted - 1,
        "PCA failed to recover the planted structure"
    );
}
