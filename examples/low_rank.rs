//! Low-rank approximation via singular values — §7.2 lists it among the
//! applications driving large dense factorizations.
//!
//! Builds a matrix with rapidly decaying spectrum, computes its singular
//! values through both the direct and the two-stage (band + bulge-chasing)
//! bidiagonal reductions, and reports the optimal rank-k approximation
//! error (Eckart–Young: `‖A − A_k‖_F² = Σ_{i>k} σᵢ²`).
//!
//! ```text
//! cargo run --release --example low_rank [n]
//! ```

use tridiag_gpu::prelude::*;
use tridiag_gpu::svd::{singular_values, SvdMethod};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(96);

    // planted spectrum σ_k = 2^{−k/4} (fast decay) via A = U Σ Vᵀ
    let u = gen::random_orthogonal(n, 3);
    let v = gen::random_orthogonal(n, 4);
    let sigma: Vec<f64> = (0..n).map(|k| (2.0f64).powf(-(k as f64) / 4.0)).collect();
    let mut a = Mat::zeros(n, n);
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] += sigma[k] * u[(i, k)] * v[(j, k)];
            }
        }
    }

    println!("low-rank structure of an {n}×{n} matrix with σ_k = 2^(−k/4)\n");

    let t = std::time::Instant::now();
    let sv_direct = singular_values(&a, SvdMethod::Direct);
    let t_direct = t.elapsed();
    let t = std::time::Instant::now();
    let sv_two = singular_values(&a, SvdMethod::TwoStage { b: 8 });
    let t_two = t.elapsed();

    let dev = sv_direct
        .iter()
        .zip(&sv_two)
        .fold(0.0f64, |m, (x, y)| m.max((x - y).abs()));
    println!("direct (Golub–Kahan):         {t_direct:?}");
    println!("two-stage (band + chasing):   {t_two:?}");
    println!("max |σ_direct − σ_two_stage| = {dev:.2e}");
    assert!(dev < 1e-10 * sv_direct[0]);

    let planted_err = sv_direct
        .iter()
        .zip(&sigma)
        .fold(0.0f64, |m, (x, y)| m.max((x - y).abs()));
    println!("max |σ − planted|            = {planted_err:.2e}\n");
    assert!(planted_err < 1e-10);

    // Eckart–Young: relative Frobenius error of the best rank-k approximation
    let total: f64 = sv_direct.iter().map(|x| x * x).sum();
    println!("{:>6}  {:>16}", "rank", "rel. error");
    for k in [1usize, 2, 4, 8, 16, 32] {
        if k > n {
            break;
        }
        let tail: f64 = sv_direct[k..].iter().map(|x| x * x).sum();
        println!("{k:>6}  {:>16.6e}", (tail / total).sqrt());
    }
    println!("\nrank-16 already captures {:.4}% of the Frobenius mass", {
        let tail: f64 = sv_direct[16.min(n)..].iter().map(|x| x * x).sum();
        100.0 * (1.0 - (tail / total).sqrt())
    });
}
