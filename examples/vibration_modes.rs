//! Vibration modes of a spring–mass chain: the generalized symmetric
//! eigenproblem `K x = ω² M x` (stiffness vs mass), solved with `sygvd`.
//!
//! For a uniform fixed–fixed chain the analytic frequencies are
//! `ω_k² = (4k_s/m)·sin²(kπ / 2(n+1))`, which this example verifies; it
//! then adds a heavy defect mass and shows the localized low mode.
//!
//! ```text
//! cargo run --release --example vibration_modes [n]
//! ```

use tridiag_gpu::eigen::{sygvd, EvdMethod};
use tridiag_gpu::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    let k_s = 1.0f64; // spring constant
    let m0 = 1.0f64; // base mass

    // stiffness: K = k_s · (1-D Laplacian), mass: M = diag(mᵢ)
    let k = {
        let mut k = gen::laplacian_1d(n).to_dense();
        for v in k.as_mut_slice() {
            *v *= k_s;
        }
        k
    };
    let m_uniform = {
        let mut m = Mat::identity(n);
        for v in m.as_mut_slice() {
            *v *= m0;
        }
        m
    };

    println!("spring–mass chain, n = {n}\n");

    // ── uniform chain: verify against the analytic dispersion relation
    let evd = sygvd(&k, &m_uniform, &EvdMethod::proposed_default(n), false)
        .expect("generalized eigensolve failed");
    let mut worst = 0.0f64;
    for (i, &lam) in evd.eigenvalues.iter().enumerate() {
        let kk = (i + 1) as f64;
        let exact = 4.0 * k_s / m0
            * (kk * std::f64::consts::PI / (2.0 * (n as f64 + 1.0)))
                .sin()
                .powi(2);
        worst = worst.max((lam - exact).abs());
    }
    println!("uniform chain: max |ω² − analytic| = {worst:.2e}");
    assert!(worst < 1e-10);

    // ── defect chain: a 25× mass at the center localizes the lowest mode
    let mut m_defect = m_uniform.clone();
    m_defect[(n / 2, n / 2)] = 25.0 * m0;
    let evd = sygvd(&k, &m_defect, &EvdMethod::proposed_default(n), true)
        .expect("generalized eigensolve failed");
    let v = evd.eigenvectors.as_ref().unwrap();

    let omega0 = evd.eigenvalues[0].sqrt();
    println!(
        "defect chain: lowest frequency {omega0:.6} (uniform chain: {:.6})",
        (4.0 * k_s / m0).sqrt() * (std::f64::consts::PI / (2.0 * (n as f64 + 1.0))).sin()
    );

    // mode-shape localization: participation of the defect site in the
    // lowest B-orthonormal mode
    let mode0 = v.col(0);
    let defect_amp = mode0[n / 2].abs();
    let max_amp = mode0.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
    println!(
        "lowest mode: defect-site amplitude = {:.3} of the peak",
        defect_amp / max_amp
    );
    assert!(
        defect_amp / max_amp > 0.9,
        "defect mode should peak at the heavy mass"
    );

    // B-orthonormality spot check
    let mut dot01 = 0.0;
    for i in 0..n {
        dot01 += mode0[i] * m_defect[(i, i)] * v.col(1)[i];
    }
    println!("M-orthogonality of modes 0,1: {dot01:.2e}");
    assert!(dot01.abs() < 1e-9);
}
