//! Explore the GPU performance-model substrate interactively: sweep the
//! DBBR parameters `(b, k)` on a modeled device and print the predicted
//! tridiagonalization time surface — the tuning exercise §4.1 of the paper
//! walks through (small `b` helps bulge chasing, large `k` helps `syr2k`).
//!
//! ```text
//! cargo run --release --example gpu_model_explorer [n] [h100|rtx4090]
//! ```

use std::env;
use tridiag_gpu::gpu_sim::{compose, Device};

fn main() {
    let n: usize = env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32768);
    let dev = match env::args().nth(2).as_deref() {
        Some("rtx4090") => Device::rtx4090(),
        _ => Device::h100(),
    };
    println!(
        "modeled tridiagonalization time on {} at n = {n} (stage1 + BC, seconds)\n",
        dev.name
    );

    let bs = [16usize, 32, 64, 128];
    let ks = [128usize, 256, 512, 1024, 2048];
    print!("{:>6}", "b \\ k");
    for k in ks {
        print!("{k:>10}");
    }
    println!();
    let mut best = (f64::INFINITY, 0, 0);
    for b in bs {
        print!("{b:>6}");
        for k in ks {
            if k < b {
                print!("{:>10}", "-");
                continue;
            }
            let stage1 = compose::dbbr_time(&dev, n, b, k);
            let bc = compose::bc_gpu_time(&dev, n, b, true, None);
            let total = stage1 + bc;
            if total < best.0 {
                best = (total, b, k);
            }
            print!("{total:>10.3}");
        }
        println!();
    }
    let flops = 4.0 / 3.0 * (n as f64).powi(3);
    println!(
        "\nbest: b = {}, k = {} → {:.3}s ({:.2} TFLOP/s)",
        best.1,
        best.2,
        best.0,
        flops / best.0 / 1e12
    );
    println!(
        "paper's choice (b = 32, k = 1024) → {:.3}s",
        compose::dbbr_time(&dev, n, 32, 1024) + compose::bc_gpu_time(&dev, n, 32, true, None)
    );
    println!("\nbaselines at this size:");
    println!(
        "  cuSOLVER sytrd: {:.3}s",
        compose::tridiag_cusolver(&dev, n)
    );
    let (sbr, bc) = compose::tridiag_magma(&dev, n, 64);
    println!(
        "  MAGMA two-stage (b = 64): {:.3}s (SBR {sbr:.3} + BC {bc:.3})",
        sbr + bc
    );
}
