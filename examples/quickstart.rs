//! Quickstart: tridiagonalize a symmetric matrix with all three pipelines,
//! verify the factorization contracts, and solve the full eigenproblem.
//!
//! ```text
//! cargo run --release --example quickstart [n]
//! ```

use std::env;
use std::time::Instant;
use tridiag_gpu::prelude::*;

fn main() {
    let n: usize = env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(192);
    println!("symmetric eigenproblem, n = {n}\n");

    let a = gen::random_symmetric(n, 7);

    let b = (n / 16).clamp(2, 32);
    let methods: Vec<(&str, Method)> = vec![
        ("direct (cuSOLVER-style sytrd)", Method::Direct { nb: 32 }),
        (
            "two-stage (MAGMA-style SBR + BC)",
            Method::Sbr {
                b,
                parallel_sweeps: 1,
            },
        ),
        (
            "two-stage (paper: DBBR + pipelined BC)",
            Method::Dbbr {
                cfg: DbbrConfig::new(b, 4 * b),
                parallel_sweeps: 4,
            },
        ),
    ];

    for (name, method) in &methods {
        let mut work = a.clone();
        let t = Instant::now();
        let red = tridiagonalize(&mut work, method);
        let elapsed = t.elapsed();
        let q = red.form_q();
        let orth = orthogonality_residual(&q);
        let sim = similarity_residual(&a, &q, &red.tri.to_dense());
        println!("{name}\n  time {elapsed:?}   ‖QᵀQ−I‖ = {orth:.2e}   ‖A−QTQᵀ‖/‖A‖ = {sim:.2e}");
    }

    // full EVD with the proposed pipeline
    let t = Instant::now();
    let evd =
        syevd(&mut a.clone(), &EvdMethod::proposed_default(n), true).expect("eigensolver failed");
    println!(
        "\nfull EVD (proposed + divide & conquer): {:?}",
        t.elapsed()
    );
    println!(
        "  λ_min = {:.6}, λ_max = {:.6}",
        evd.eigenvalues[0],
        evd.eigenvalues[n - 1]
    );
    println!("  eigenpair residual = {:.2e}", evd.residual(&a));
    let v = evd.eigenvectors.as_ref().unwrap();
    println!(
        "  eigenvector orthogonality = {:.2e}",
        orthogonality_residual(v)
    );
}
