//! Matrix functions via eigendecomposition: `f(A) = V f(Λ) Vᵀ`.
//!
//! Computes the matrix square root and exponential of an SPD matrix with
//! the proposed EVD pipeline and verifies them independently
//! (`√A·√A = A`; `exp(A)` against its Taylor series).
//!
//! ```text
//! cargo run --release --example matrix_functions [n]
//! ```

use tridiag_gpu::blas::{gemm, Op};
use tridiag_gpu::prelude::*;

fn apply_spectral(f: impl Fn(f64) -> f64, eigs: &[f64], v: &Mat) -> Mat {
    let n = v.nrows();
    // V f(Λ) Vᵀ
    let mut vf = Mat::zeros(n, n);
    for (k, &lam) in eigs.iter().enumerate() {
        let s = f(lam);
        let col = v.col(k);
        let out = vf.col_mut(k);
        for i in 0..n {
            out[i] = s * col[i];
        }
    }
    let mut result = Mat::zeros(n, n);
    gemm(
        1.0,
        &vf.as_ref(),
        Op::NoTrans,
        &v.as_ref(),
        Op::Trans,
        0.0,
        &mut result.as_mut(),
    );
    result
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(96);
    // SPD with a modest condition number, scaled so ‖A‖ ~ 1 (for exp)
    let mut a = gen::random_spd(n, 5);
    let scale = 1.0 / (2.0 * n as f64);
    for x in a.as_mut_slice() {
        *x *= scale;
    }
    println!("matrix functions of an SPD matrix, n = {n}\n");

    let evd =
        syevd(&mut a.clone(), &EvdMethod::proposed_default(n), true).expect("eigensolver failed");
    let v = evd.eigenvectors.as_ref().unwrap();
    println!(
        "spectrum in [{:.4}, {:.4}], eigenpair residual {:.2e}",
        evd.eigenvalues[0],
        evd.eigenvalues[n - 1],
        evd.residual(&a)
    );

    // ── matrix square root
    let sqrt_a = apply_spectral(f64::sqrt, &evd.eigenvalues, v);
    let mut sq = Mat::zeros(n, n);
    gemm(
        1.0,
        &sqrt_a.as_ref(),
        Op::NoTrans,
        &sqrt_a.as_ref(),
        Op::NoTrans,
        0.0,
        &mut sq.as_mut(),
    );
    let err_sqrt = tridiag_gpu::matrix::max_abs_diff(&sq, &a);
    println!("‖√A·√A − A‖_max = {err_sqrt:.2e}");
    assert!(err_sqrt < 1e-11);

    // ── matrix exponential, cross-checked against 20 Taylor terms
    let exp_a = apply_spectral(f64::exp, &evd.eigenvalues, v);
    let mut taylor = Mat::identity(n);
    let mut term = Mat::identity(n);
    for k in 1..=20 {
        let mut next = Mat::zeros(n, n);
        gemm(
            1.0 / k as f64,
            &term.as_ref(),
            Op::NoTrans,
            &a.as_ref(),
            Op::NoTrans,
            0.0,
            &mut next.as_mut(),
        );
        term = next;
        for (t, x) in taylor.as_mut_slice().iter_mut().zip(term.as_slice()) {
            *t += x;
        }
    }
    let err_exp = tridiag_gpu::matrix::max_abs_diff(&exp_a, &taylor);
    println!("‖exp(A) − Taylor₂₀‖_max = {err_exp:.2e}");
    assert!(err_exp < 1e-10);

    // ── log det via the spectrum (the PCA/GP workhorse)
    let logdet: f64 = evd.eigenvalues.iter().map(|x| x.ln()).sum();
    println!("log det A = {logdet:.6}");
    println!("\nall matrix-function identities verified.");
}
